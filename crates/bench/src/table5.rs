//! Table 5 / Figure 10 — failure-free execution time vs redundancy degree,
//! measured on the **real runtime**: CG under the replication layer at
//! every degree from 1x to 3x, virtual times scaled so degree 1 matches the
//! paper's 46-minute baseline.

use redcr_apps::cg::CgSolver;
use redcr_model::redundancy::redundant_time;
use redcr_red::ReplicatedWorld;

use crate::calib;
use crate::output::TextTable;
use crate::paper::{constants, DEGREES, TABLE5_EXPECTED, TABLE5_OBSERVED};

/// The measured failure-free curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5 {
    /// Raw virtual seconds per degree (before scaling).
    pub virtual_seconds: Vec<f64>,
    /// Scaled to the paper's units: minutes, with degree 1 = 46 min.
    pub observed_minutes: Vec<f64>,
    /// The Eq. 1 linear expectation in the same units.
    pub expected_minutes: Vec<f64>,
    /// Observed communication fraction α at degree 1.
    pub alpha_at_1x: f64,
}

impl Table5 {
    /// `observed(r) / observed(1x)` ratios.
    pub fn ratios(&self) -> Vec<f64> {
        let base = self.observed_minutes[0];
        self.observed_minutes.iter().map(|m| m / base).collect()
    }
}

/// Runs the failure-free CG sweep on the replicated runtime.
///
/// # Panics
///
/// Panics if a run fails (these runs are failure-free by construction).
pub fn generate() -> Table5 {
    let cost = calib::table5_cost_model();
    let vote_cost = calib::table5_vote_cost();
    let mut virtual_seconds = Vec::with_capacity(DEGREES.len());
    for &degree in &DEGREES {
        let solver = CgSolver::new(calib::table5_cg_config());
        let report = ReplicatedWorld::builder(calib::T5_RANKS, degree)
            .expect("valid degree")
            .cost_model(cost)
            .vote_cost(vote_cost)
            .run(move |comm| {
                let mut state = solver.init_state(comm)?;
                solver.run(comm, &mut state, calib::T5_ITERATIONS)?;
                Ok(())
            })
            .expect("failure-free run");
        virtual_seconds.push(report.max_virtual_time);
    }
    // α measurement at degree 1 via the workload helper (same config).
    let alpha_at_1x = redcr_apps::workload::measure_cg_alpha(
        calib::T5_RANKS as usize,
        &calib::table5_cg_config(),
        cost,
        calib::T5_ITERATIONS,
    )
    .expect("alpha probe")
    .alpha;

    let scale = constants::BASE_TIME_MINS / virtual_seconds[0];
    let observed_minutes: Vec<f64> = virtual_seconds.iter().map(|t| t * scale).collect();
    let expected_minutes: Vec<f64> = DEGREES
        .iter()
        .map(|&r| {
            redundant_time(constants::BASE_TIME_MINS, constants::ALPHA, r)
                .expect("valid Eq. 1 inputs")
        })
        .collect();
    Table5 { virtual_seconds, observed_minutes, expected_minutes, alpha_at_1x }
}

/// Renders the table with the paper's rows alongside.
pub fn render(t5: &Table5) -> String {
    let mut t = TextTable::new().header(
        std::iter::once("Degree".to_string()).chain(DEGREES.iter().map(|d| format!("{d}x"))),
    );
    let row = |label: &str, values: &[f64]| -> Vec<String> {
        std::iter::once(label.to_string()).chain(values.iter().map(|v| format!("{v:.0}"))).collect()
    };
    t.row(row("observed (ours)", &t5.observed_minutes));
    t.row(row("expected linear (Eq. 1)", &t5.expected_minutes));
    t.row(row("observed (paper)", &TABLE5_OBSERVED));
    t.row(row("expected (paper)", &TABLE5_EXPECTED));
    format!(
        "Table 5 / Figure 10. Failure-free execution time [minutes] vs redundancy\n\
         (measured on the replicated runtime, {} ranks, scaled to 46 min at 1x;\n\
         observed α at 1x = {:.3})\n\n{}",
        calib::T5_RANKS,
        t5.alpha_at_1x,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_shape_matches_paper() {
        let t5 = generate();
        let ratios = t5.ratios();
        // Monotone increasing.
        for pair in ratios.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9, "{ratios:?}");
        }
        // Ends near the paper's 1.78x at triple redundancy.
        assert!(
            (ratios[8] - 1.78).abs() < 0.15,
            "3x ratio {} should be near the paper's 1.78",
            ratios[8]
        );
        // Super-linear first step: the 1x→1.25x jump beats the Eq. 1 slope
        // (the paper's observation (4) mechanism).
        let eq1_step = (t5.expected_minutes[1] - t5.expected_minutes[0]) / t5.expected_minutes[0];
        let first_step = ratios[1] - 1.0;
        assert!(
            first_step > eq1_step,
            "first step {first_step} should exceed the linear slope {eq1_step}"
        );
        // Observed sits above the linear expectation from 1.25x on
        // (Figure 10's gap).
        for (i, degree) in DEGREES.iter().enumerate().take(9).skip(1) {
            assert!(
                t5.observed_minutes[i] > t5.expected_minutes[i],
                "observed {} <= expected {} at {}x",
                t5.observed_minutes[i],
                t5.expected_minutes[i],
                degree
            );
        }
        // α calibration held.
        assert!((t5.alpha_at_1x - 0.2).abs() < 0.08, "alpha {}", t5.alpha_at_1x);
    }
}
