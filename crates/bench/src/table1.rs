//! Table 1 — reliability of HPC clusters (background survey, reproduced
//! verbatim for completeness).

use crate::output::TextTable;
use crate::paper::TABLE1;

/// Renders Table 1.
pub fn render() -> String {
    let mut t = TextTable::new().header(["System", "# CPUs", "MTBF/I"]);
    for (system, cpus, mtbf) in TABLE1 {
        t.row([(*system).to_string(), (*cpus).to_string(), (*mtbf).to_string()]);
    }
    format!("Table 1. Reliability of HPC Clusters (survey data, from the paper)\n\n{}", t.render())
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_rows() {
        let s = super::render();
        assert!(s.contains("ASCI Q"));
        assert!(s.contains("BG/L"));
        assert_eq!(s.lines().filter(|l| !l.trim().is_empty()).count(), 3 + 5);
    }
}
