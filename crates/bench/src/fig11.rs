//! Figure 11 — the *simplified* experimental model (Section 6(5)) evaluated
//! at the Table 4 parameters: one curve per MTBF, time vs degree.

use redcr_model::combined::SimplifiedForm;

use crate::calib::experiment_config;
use crate::output::TextTable;
use crate::paper::{constants, DEGREES};

/// The modeled matrix: rows by MTBF, columns by degree, minutes.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// `(mtbf_hours, minutes per degree)`.
    pub rows: Vec<(f64, Vec<f64>)>,
    /// Which simplified form was used.
    pub form: SimplifiedForm,
}

/// Generates the figure with the chosen simplified form (the paper's
/// verbatim formula or the dimensionally consistent reading; see
/// [`SimplifiedForm`]).
pub fn generate(form: SimplifiedForm) -> Fig11 {
    let rows = constants::MTBF_HOURS
        .iter()
        .map(|&mtbf| {
            let cfg = experiment_config(mtbf);
            let minutes = DEGREES
                .iter()
                .map(|&d| {
                    cfg.with_degree(d)
                        .evaluate_simplified(form)
                        .map(|hours| hours * 60.0)
                        .unwrap_or(f64::INFINITY)
                })
                .collect();
            (mtbf, minutes)
        })
        .collect();
    Fig11 { rows, form }
}

/// Renders the matrix.
pub fn render(fig: &Fig11) -> String {
    let mut t = TextTable::new()
        .header(std::iter::once("MTBF".to_string()).chain(DEGREES.iter().map(|d| format!("{d}x"))));
    for (mtbf, row) in &fig.rows {
        let mut cells = vec![format!("{mtbf:.0} hrs")];
        cells.extend(row.iter().map(
            |v| {
                if v.is_finite() {
                    format!("{v:.1}")
                } else {
                    "div".into()
                }
            },
        ));
        t.row(cells);
    }
    format!(
        "Figure 11. Modeled application performance [minutes]\n\
         (simplified model, {:?} form; t = 46 min, N = 128, α = 0.2,\n\
         c = 120 s, R = 500 s)\n\n{}",
        fig.form,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_fall_with_mtbf_and_shape_matches() {
        let fig = generate(SimplifiedForm::Consistent);
        assert_eq!(fig.rows.len(), 5);
        // Higher MTBF -> faster at every degree.
        for (d, degree) in DEGREES.iter().enumerate() {
            for w in fig.rows.windows(2) {
                if w[0].1[d].is_finite() && w[1].1[d].is_finite() {
                    assert!(
                        w[1].1[d] <= w[0].1[d] + 1e-9,
                        "degree {degree} should improve with MTBF"
                    );
                }
            }
        }
        // Dual redundancy beats 1x at the lowest MTBF.
        let row6 = &fig.rows[0].1;
        assert!(row6[4] < row6[0], "2x {} vs 1x {}", row6[4], row6[0]);
        // All times at least the redundant base time.
        for (_, row) in &fig.rows {
            for (i, v) in row.iter().enumerate() {
                if v.is_finite() {
                    let t_red = 46.0 * (0.8 + 0.2 * DEGREES[i]);
                    assert!(*v >= t_red - 1e-6);
                }
            }
        }
    }

    #[test]
    fn verbatim_form_also_evaluates() {
        let fig = generate(SimplifiedForm::Verbatim);
        assert!(fig.rows.iter().all(|(_, row)| row.iter().all(|v| v.is_finite())));
    }
}
