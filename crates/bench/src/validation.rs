//! Measured-vs-model validation runs: executes the paper's CG setup on the
//! resilient executor with the flight recorder and metrics plane on, feeds
//! the measured α, checkpoint cost and failure counts back into Eqs. 1 and
//! 14, and writes a `*_validation.json` sidecar per run into `results/`
//! (see `results/README.md`).
//!
//! Two scenarios bracket the model:
//!
//! * `cg` — failure-free (per-node MTBF 10⁹ s): the prediction must land
//!   within 20% of the observed runtime (asserted by the `validation`
//!   binary and CI);
//! * `cg_failures` — the stormy `cg_resilient` setup (90 s MTBF): the
//!   sidecar records how far a single noisy sample strays from the
//!   expectation (no bound asserted — one seed is not an ensemble);
//! * `cg_heal` — the same storm under triple redundancy with `OnDegrade`
//!   self-healing: replicas die, are respawned from surviving donors and
//!   rejoin, and the **repair-extended** model (Eqs. 9–14 with the measured
//!   repair rate `μ`, see `redcr_model::repair`) must land within the same
//!   20% bound (asserted by the `validation` binary and CI).

use std::path::PathBuf;

use redcr_apps::cg::CgConfig;
use redcr_core::apps::CgApp;
use redcr_core::{ExecutorConfig, ModelValidation, ResilientExecutor};
use redcr_red::HealPolicy;

use crate::output;

/// One executed validation scenario.
#[derive(Debug, Clone)]
pub struct ValidationRun {
    /// Artifact stem (`results/<name>_validation.json`).
    pub name: &'static str,
    /// The measured-vs-model comparison.
    pub validation: ModelValidation,
}

fn run(name: &'static str, cfg: ExecutorConfig) -> ValidationRun {
    run_sized(name, cfg, 256, 40)
}

fn run_sized(name: &'static str, cfg: ExecutorConfig, n: usize, iterations: u64) -> ValidationRun {
    let app = CgApp::new(CgConfig::small(n), iterations).with_step_pad(1.0);
    let report = ResilientExecutor::new(cfg.clone()).run(&app).expect("validation run");
    let validation = ModelValidation::from_run(&cfg, &report).expect("validation report");
    ValidationRun { name, validation }
}

/// Executes both scenarios (a few virtual minutes of simulated CG each).
pub fn generate() -> Vec<ValidationRun> {
    let base = ExecutorConfig::new(8, 2.0)
        .checkpoint_interval(10.0)
        .checkpoint_cost(0.5)
        .restart_cost(2.0)
        .tracing(true)
        .metrics(true);
    let heal = ExecutorConfig::new(4, 3.0)
        .node_mtbf(60.0)
        .checkpoint_interval(6.0)
        .checkpoint_cost(0.2)
        .restart_cost(1.0)
        .seed(0)
        .tracing(true)
        .metrics(true)
        .heal_policy(HealPolicy::OnDegrade)
        .heartbeat_period(0.5)
        .suspicion_timeout(0.5)
        .respawn_cost(0.5)
        .transfer_cost_per_byte(1e-4);
    vec![
        run("cg", base.clone().node_mtbf(1e9).seed(1)),
        run("cg_failures", base.node_mtbf(90.0).seed(2012)),
        run_sized("cg_heal", heal, 32, 20),
    ]
}

/// Renders the printable report.
pub fn render(runs: &[ValidationRun]) -> String {
    let mut out = String::from("measured-vs-model validation (Eqs. 1, 9-10, 12-14)\n\n");
    for r in runs {
        out.push_str(&format!("== {} ==\n{}\n\n", r.name, r.validation));
    }
    out
}

/// Writes each run's JSON sidecar into `results/`, returning the paths.
pub fn write_sidecars(runs: &[ValidationRun]) -> Vec<PathBuf> {
    runs.iter()
        .map(|r| {
            output::write_result(&format!("{}_validation.json", r.name), &r.validation.to_json())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_scenario_validates_within_bound() {
        let cfg = ExecutorConfig::new(4, 2.0)
            .node_mtbf(1e9)
            .checkpoint_interval(8.0)
            .checkpoint_cost(0.2)
            .restart_cost(1.0)
            .seed(3)
            .tracing(true)
            .metrics(true);
        let app = CgApp::new(CgConfig::small(64), 12).with_step_pad(1.0);
        let report = ResilientExecutor::new(cfg.clone()).run(&app).unwrap();
        let v = ModelValidation::from_run(&cfg, &report).unwrap();
        assert_eq!(v.failures, 0);
        assert!(v.relative_error.abs() < 0.2, "relative error {}", v.relative_error);
        assert!(v.to_json().contains("redcr-model-validation/1"));
    }
}
