//! Reference values from the paper, used for side-by-side reporting and
//! shape assertions.

/// Table 1: reliability of HPC clusters (system, CPUs, MTBF/I) — background
/// data reproduced verbatim for the `table1` report.
pub const TABLE1: &[(&str, &str, &str)] = &[
    ("ASCI Q", "8,192", "6.5 hrs"),
    ("ASCI White", "8,192", "5/40 hrs ('01/'03)"),
    ("PSC Lemieux", "3,016", "9.7 hrs"),
    ("Google", "15,000", "20 reboots/day"),
    ("ASC BG/L", "212,992", "6.9 hrs (LLNL est.)"),
];

/// Table 2: percentage breakdown for a 168-hour job at 5-year node MTBF:
/// `(nodes, work %, checkpoint %, recompute %, restart %)`.
pub const TABLE2: &[(u64, f64, f64, f64, f64)] = &[
    (100, 96.0, 1.0, 3.0, 0.0),
    (1_000, 92.0, 7.0, 1.0, 0.0),
    (10_000, 75.0, 15.0, 6.0, 4.0),
    (100_000, 35.0, 20.0, 10.0, 35.0),
];

/// Table 3: 100k-node job breakdowns:
/// `(job hours, MTBF years, work %, checkpoint %, recompute %, restart %)`.
pub const TABLE3: &[(f64, f64, f64, f64, f64, f64)] = &[
    (168.0, 5.0, 35.0, 20.0, 10.0, 35.0),
    (700.0, 5.0, 38.0, 18.0, 9.0, 43.0),
    (5_000.0, 1.0, 5.0, 5.0, 5.0, 85.0),
];

/// The redundancy-degree grid of the experiments (1x–3x, step 0.25).
pub const DEGREES: [f64; 9] = [1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0];

/// Table 4: measured execution time in minutes, rows = MTBF hours,
/// columns = [`DEGREES`].
pub const TABLE4: &[(f64, [f64; 9])] = &[
    (6.0, [275.0, 279.0, 212.0, 189.0, 146.0, 158.0, 139.0, 132.0, 123.0]),
    (12.0, [201.0, 207.0, 167.0, 143.0, 103.0, 113.0, 98.0, 111.0, 125.0]),
    (18.0, [184.0, 179.0, 148.0, 120.0, 72.0, 126.0, 88.0, 80.0, 84.0]),
    (24.0, [159.0, 143.0, 133.0, 100.0, 67.0, 92.0, 78.0, 84.0, 83.0]),
    (30.0, [136.0, 128.0, 110.0, 101.0, 66.0, 73.0, 80.0, 82.0, 84.0]),
];

/// Table 5: failure-free execution time in minutes vs degree (row 1:
/// observed, row 2: the paper's "expected linear increase").
pub const TABLE5_OBSERVED: [f64; 9] = [46.0, 55.0, 59.0, 61.0, 63.0, 70.0, 76.0, 78.0, 82.0];

/// Table 5 second row: the linear Eq. 1 expectation.
pub const TABLE5_EXPECTED: [f64; 9] = [46.0, 48.0, 51.0, 53.0, 55.0, 58.0, 60.0, 62.0, 64.0];

/// Section 6 experimental constants.
pub mod constants {
    /// Virtual processes in the CG experiments.
    pub const N_PROCESSES: u64 = 128;
    /// Failure-free base time of the modified CG class D run, minutes.
    pub const BASE_TIME_MINS: f64 = 46.0;
    /// Measured checkpoint cost, seconds.
    pub const CHECKPOINT_SECS: f64 = 120.0;
    /// Measured restart cost, seconds.
    pub const RESTART_SECS: f64 = 500.0;
    /// Measured CG communication fraction.
    pub const ALPHA: f64 = 0.2;
    /// The MTBF grid of Table 4, hours.
    pub const MTBF_HOURS: [f64; 5] = [6.0, 12.0, 18.0, 24.0, 30.0];
}

/// Figure 13/14 landmarks (process counts).
pub mod landmarks {
    /// 1x/2x crossover.
    pub const CROSS_1X_2X: u64 = 4_351;
    /// 1x/3x crossover.
    pub const CROSS_1X_3X: u64 = 12_551;
    /// N where two 2x jobs finish within one 1x job (throughput).
    pub const THROUGHPUT_2X: u64 = 78_536;
    /// N beyond which 3x has the lowest cost.
    pub const TRIPLE_BEST_BEYOND: u64 = 771_251;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_have_expected_shapes() {
        assert_eq!(TABLE2.len(), 4);
        assert_eq!(TABLE4.len(), 5);
        for (_, row) in TABLE4 {
            assert_eq!(row.len(), DEGREES.len());
        }
        // Paper minima: 3x at 6h, 2.5x at 12h, 2x at 18-30h.
        let argmin =
            |row: &[f64; 9]| row.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(DEGREES[argmin(&TABLE4[0].1)], 3.0);
        assert_eq!(DEGREES[argmin(&TABLE4[1].1)], 2.5);
        for row in &TABLE4[2..] {
            assert_eq!(DEGREES[argmin(&row.1)], 2.0);
        }
    }

    #[test]
    fn table5_monotone_observed_above_expected() {
        for i in 1..9 {
            assert!(TABLE5_OBSERVED[i] >= TABLE5_OBSERVED[i - 1]);
            assert!(TABLE5_OBSERVED[i] > TABLE5_EXPECTED[i]);
        }
    }
}
