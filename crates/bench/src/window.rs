//! The partial-redundancy **window study** — quantifying the paper's claim
//! that fractional degrees "only \[have\] a narrow window of applicability":
//! sweep the operating axes finely, find where the quarter-step optimum is
//! fractional, and measure how wide those regions are.
//!
//! Two axes, matching the paper's two observations:
//!
//! * process count under weak scaling (Figure 13/14 setting — the paper:
//!   "Contrary to our experiments ... partial redundancy never results in
//!   the lowest completion time for the given settings");
//! * node MTBF at the experimental scale (Table 4 setting — the paper finds
//!   2.5x optimal at 12 h, a window that "usually span\[s\] a short window").

use redcr_model::combined::CombinedConfig;

use crate::calib::{experiment_config, scaling_config};
use crate::output::TextTable;
use crate::paper::DEGREES;

/// One swept point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// The swept coordinate (process count or MTBF hours).
    pub x: f64,
    /// The optimal degree on the quarter grid (`None` if everything
    /// diverged).
    pub best_degree: Option<f64>,
}

/// A sweep result.
#[derive(Debug, Clone)]
pub struct WindowStudy {
    /// Axis label.
    pub axis: &'static str,
    /// Sampled points.
    pub points: Vec<WindowPoint>,
}

impl WindowStudy {
    /// Fraction of the sampled axis where a *fractional* degree is optimal.
    pub fn fractional_fraction(&self) -> f64 {
        let valid: Vec<f64> = self.points.iter().filter_map(|p| p.best_degree).collect();
        if valid.is_empty() {
            return 0.0;
        }
        let fractional = valid
            .iter()
            .filter(|d| !((*d * 4.0) as u64).is_multiple_of(4) && d.fract() != 0.0)
            .count();
        fractional as f64 / valid.len() as f64
    }

    /// Contiguous runs of points sharing an optimal fractional degree:
    /// `(degree, x_start, x_end)`.
    pub fn fractional_windows(&self) -> Vec<(f64, f64, f64)> {
        let mut out: Vec<(f64, f64, f64)> = Vec::new();
        for p in &self.points {
            match p.best_degree {
                Some(d) if d.fract() != 0.0 => match out.last_mut() {
                    Some((deg, _, end)) if *deg == d && *end < p.x => *end = p.x,
                    _ => out.push((d, p.x, p.x)),
                },
                _ => {}
            }
        }
        out
    }
}

fn best_on_grid(cfg: &CombinedConfig) -> Option<f64> {
    let mut best: Option<(f64, f64)> = None;
    for &d in &DEGREES {
        if let Ok(o) = cfg.with_degree(d).evaluate() {
            if best.is_none_or(|(_, t)| o.total_time < t) {
                best = Some((d, o.total_time));
            }
        }
    }
    best.map(|(d, _)| d)
}

/// Sweeps the process count (log-spaced) at the Figure 13/14 configuration.
pub fn sweep_processes(lo: u64, hi: u64, points: usize) -> WindowStudy {
    let cfg = scaling_config();
    let pts = (0..points)
        .map(|i| {
            let f = (lo as f64).ln()
                + ((hi as f64).ln() - (lo as f64).ln()) * i as f64 / (points - 1) as f64;
            let n = f.exp().round() as u64;
            WindowPoint { x: n as f64, best_degree: best_on_grid(&cfg.with_virtual_processes(n)) }
        })
        .collect();
    WindowStudy { axis: "process count", points: pts }
}

/// Sweeps the per-process MTBF (hours) at the Table 4 configuration.
pub fn sweep_mtbf(lo: f64, hi: f64, points: usize) -> WindowStudy {
    let pts = (0..points)
        .map(|i| {
            let mtbf = lo + (hi - lo) * i as f64 / (points - 1) as f64;
            let cfg = experiment_config(mtbf);
            WindowPoint { x: mtbf, best_degree: best_on_grid(&cfg) }
        })
        .collect();
    WindowStudy { axis: "node MTBF [h]", points: pts }
}

/// Renders a study.
pub fn render(study: &WindowStudy) -> String {
    let mut t = TextTable::new().header([study.axis, "optimal degree"]);
    for p in &study.points {
        t.row([
            format!("{:.1}", p.x),
            p.best_degree.map(|d| format!("{d}x")).unwrap_or_else(|| "div".into()),
        ]);
    }
    let windows = study.fractional_windows();
    let mut out = format!(
        "Partial-redundancy window study over {}\n\n{}\nfractional-optimal share: {:.1}%\n",
        study.axis,
        t.render(),
        study.fractional_fraction() * 100.0
    );
    if windows.is_empty() {
        out.push_str("no fractional window on this axis (integral degrees always win)\n");
    } else {
        for (d, a, b) in windows {
            out.push_str(&format!("  {d}x optimal for {} in [{a:.1}, {b:.1}]\n", study.axis));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_redundancy_windows_are_narrow() {
        // The paper's headline caveat: fractional degrees win only in
        // narrow regions, if at all.
        let by_n = sweep_processes(100, 2_000_000, 60);
        assert!(
            by_n.fractional_fraction() < 0.25,
            "fractional share over N: {}",
            by_n.fractional_fraction()
        );
        let by_mtbf = sweep_mtbf(2.0, 48.0, 60);
        assert!(
            by_mtbf.fractional_fraction() < 0.25,
            "fractional share over MTBF: {}",
            by_mtbf.fractional_fraction()
        );
    }

    #[test]
    fn optimum_degree_weakly_increases_with_scale() {
        let study = sweep_processes(100, 2_000_000, 40);
        let degrees: Vec<f64> = study.points.iter().filter_map(|p| p.best_degree).collect();
        let first = degrees.first().copied().unwrap();
        let last = degrees.last().copied().unwrap();
        assert!(first <= 1.25, "small scale should not need redundancy: {first}");
        assert!(last >= 2.0, "large scale needs at least dual redundancy: {last}");
    }

    #[test]
    fn render_mentions_share() {
        let s = render(&sweep_mtbf(6.0, 30.0, 5));
        assert!(s.contains("fractional-optimal share"));
    }
}
