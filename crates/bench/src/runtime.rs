//! Wall-clock runtime benchmarks for the simmpi delivery hot path.
//!
//! Unlike every other module in this crate — which measures *virtual* time
//! produced by the simulator — this one measures how fast the simulator
//! itself runs on the host: messages per wall-clock second through the
//! mailbox, allreduce sweeps per second, and end-to-end wall time of a
//! message-heavy CG solve at replication degrees 1–3 with and without
//! injected failures.
//!
//! The `runtime` binary writes [`BENCH_runtime.json`](crate) at the
//! repository root. The file keeps **two** measurement sets: a `baseline`
//! captured before the channel-indexed mailbox landed (committed once,
//! then preserved verbatim by every later run) and the `current` numbers
//! of the invocation, plus per-scenario speedups. That gives this and
//! every future perf PR a wall-clock trajectory to improve against.

// This module is the workspace's one sanctioned wall-clock domain (see
// clippy.toml and detlint.toml, which put the bench crate in `wallclock`):
// it measures the simulator from outside, so `Instant` here is the point.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use bytes::Bytes;

use redcr_apps::cg::CgConfig;
use redcr_core::apps::CgApp;
use redcr_core::{ExecutorConfig, ResilientExecutor};
use redcr_mpi::collectives::ReduceOp;
use redcr_mpi::{Communicator, CostModel, Rank, RankSelector, Tag, TagSelector, World};

/// Benchmark sizing preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// CI-sized: finishes in a few seconds, numbers are only sanity checks.
    Smoke,
    /// Default: large enough that per-scenario noise stays in the few-percent
    /// range on an otherwise idle machine.
    Full,
}

impl Preset {
    /// Parses `"smoke"`/`"full"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Preset::Smoke),
            "full" => Some(Preset::Full),
            _ => None,
        }
    }

    /// The preset's name as stored in the JSON document.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Smoke => "smoke",
            Preset::Full => "full",
        }
    }
}

/// One measured scenario: elapsed wall seconds and a scenario-specific
/// throughput figure (whose unit is in [`Scenario::unit`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Elapsed wall-clock seconds.
    pub wall_s: f64,
    /// Work per wall second (messages/s, allreduces/s, or virtual-s/s).
    pub throughput: f64,
}

/// A named measurement.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable scenario key (also the JSON object key).
    pub name: &'static str,
    /// Human description of what ran.
    pub what: &'static str,
    /// Unit of [`Measurement::throughput`].
    pub unit: &'static str,
    /// The measurement.
    pub m: Measurement,
}

/// The scenario key the acceptance gate tracks (message-heavy CG at r=3).
pub const HEADLINE_SCENARIO: &str = "cg_r3";

/// Repetitions per scenario; the **minimum** wall time is recorded. On a
/// shared host external load only ever adds time, so the minimum is the
/// noise-robust estimator of the simulator's own cost (the virtual-time
/// results are fixed-seed and identical across repetitions — only the
/// wall clock varies).
pub const REPS: u32 = 3;

fn best_of(mut scenario: impl FnMut() -> Measurement) -> Measurement {
    (0..REPS).map(|_| scenario()).min_by(|a, b| a.wall_s.total_cmp(&b.wall_s)).expect("REPS > 0")
}

fn pingpong(rounds: u64) -> Measurement {
    let t0 = Instant::now();
    World::builder(2)
        .cost_model(CostModel::infiniband_qdr())
        .run(|comm| {
            let me = comm.rank().index();
            let peer = Rank::new(1 - me as u32);
            let payload = Bytes::from_static(&[0u8; 64]);
            let tag = Tag::new(7);
            for _ in 0..rounds {
                if me == 0 {
                    comm.send_bytes(peer, tag, payload.clone())?;
                    comm.recv(RankSelector::Rank(peer), TagSelector::Tag(tag))?;
                } else {
                    comm.recv(RankSelector::Rank(peer), TagSelector::Tag(tag))?;
                    comm.send_bytes(peer, tag, payload.clone())?;
                }
            }
            Ok(())
        })
        .expect("ping-pong world")
        .into_results()
        .expect("ping-pong ranks");
    let wall = t0.elapsed().as_secs_f64();
    Measurement { wall_s: wall, throughput: (2 * rounds) as f64 / wall }
}

fn allreduce(ranks: usize, iters: u64, vec_len: usize) -> Measurement {
    let t0 = Instant::now();
    World::builder(ranks)
        .cost_model(CostModel::infiniband_qdr())
        .run(|comm| {
            let values = vec![1.0f64; vec_len];
            let mut acc = 0.0;
            for _ in 0..iters {
                acc += comm.allreduce_f64(&values, ReduceOp::Sum)?[0];
            }
            Ok(acc)
        })
        .expect("allreduce world")
        .into_results()
        .expect("allreduce ranks");
    let wall = t0.elapsed().as_secs_f64();
    Measurement { wall_s: wall, throughput: iters as f64 / wall }
}

fn cg(degree: f64, iterations: u64, mtbf: f64, step_pad: f64) -> Measurement {
    let cfg = ExecutorConfig::new(8, degree)
        .node_mtbf(mtbf)
        .checkpoint_interval(10.0)
        .checkpoint_cost(0.5)
        .restart_cost(2.0)
        .seed(2012);
    let app = CgApp::new(CgConfig::small(256), iterations).with_step_pad(step_pad);
    let t0 = Instant::now();
    let report = ResilientExecutor::new(cfg).run(&app).expect("cg bench run");
    let wall = t0.elapsed().as_secs_f64();
    Measurement { wall_s: wall, throughput: report.total_virtual_time / wall }
}

fn cg_big(iterations: u64) -> Measurement {
    // 512 virtual ranks at r = 2 → 1024 physical rank tasks. Simply
    // *spawning* that many OS threads per world segment made this size
    // infeasible under the old thread-per-rank executor; on the M:N
    // scheduler the tasks are coroutines and the scenario is routine
    // (set `REDCR_EXEC=threads` to measure the thread-backend baseline).
    let cfg = ExecutorConfig::new(512, 2.0)
        .node_mtbf(1e12)
        .checkpoint_interval(10.0)
        .checkpoint_cost(0.5)
        .restart_cost(2.0)
        .seed(2012);
    let app = CgApp::new(CgConfig::small(2048), iterations);
    let t0 = Instant::now();
    let report = ResilientExecutor::new(cfg).run(&app).expect("big cg bench run");
    let wall = t0.elapsed().as_secs_f64();
    Measurement { wall_s: wall, throughput: report.total_virtual_time / wall }
}

/// Runs every scenario of `preset` and returns the measurements.
///
/// Scenario set (stable keys; the determinism-sensitive virtual-time
/// configs are fixed-seed, so only the *wall-clock* varies between runs):
///
/// * `pingpong` — 2 ranks, specific-source/specific-tag blocking
///   round-trips (the mailbox fast path);
/// * `allreduce` — 8 ranks, 256-element sum allreduce (collective tree
///   traffic over fresh per-collective tags);
/// * `cg_r1` / `cg_r2` / `cg_r3` — end-to-end resilient CG, failure-free,
///   at replication degree 1/2/3 (r× physical message fan-out);
/// * `cg_r2_failures` / `cg_r3_failures` — the same solve under a 400 s
///   node MTBF (live deaths, replica failover, restarts);
/// * `cg_r2_big` — 512 virtual ranks at r = 2 (1024 physical rank
///   tasks), failure-free: the scheduler-scalability scenario that was
///   infeasible thread-per-rank.
pub fn run_all(preset: Preset) -> Vec<Scenario> {
    let (pp_rounds, ar_iters, cg_iters, cg_fail_iters, cg_big_iters) = match preset {
        Preset::Smoke => (20_000, 1_000, 120, 60, 2),
        Preset::Full => (400_000, 20_000, 4_000, 600, 8),
    };
    let mut out = Vec::new();
    let mut push = |name, what, unit, m| out.push(Scenario { name, what, unit, m });
    push(
        "pingpong",
        "2-rank 64 B blocking round-trips (specific source+tag)",
        "msgs/s",
        best_of(|| pingpong(pp_rounds)),
    );
    push(
        "allreduce",
        "8-rank 256-element sum allreduce",
        "allreduce/s",
        best_of(|| allreduce(8, ar_iters, 256)),
    );
    push(
        "cg_r1",
        "resilient CG n=8 r=1, failure-free",
        "vsec/s",
        best_of(|| cg(1.0, cg_iters, 1e12, 0.0)),
    );
    push(
        "cg_r2",
        "resilient CG n=8 r=2, failure-free",
        "vsec/s",
        best_of(|| cg(2.0, cg_iters, 1e12, 0.0)),
    );
    push(
        "cg_r3",
        "resilient CG n=8 r=3, failure-free",
        "vsec/s",
        best_of(|| cg(3.0, cg_iters, 1e12, 0.0)),
    );
    // Failure scenarios pad each CG step by one virtual second so the
    // virtual job is long enough (≈ iterations seconds) for the MTBF to
    // actually produce deaths, failovers, and restarts.
    push(
        "cg_r2_failures",
        "resilient CG n=8 r=2, 1 s step pad, node MTBF 1500 s",
        "vsec/s",
        best_of(|| cg(2.0, cg_fail_iters, 1500.0, 1.0)),
    );
    push(
        "cg_r3_failures",
        "resilient CG n=8 r=3, 1 s step pad, node MTBF 1500 s",
        "vsec/s",
        best_of(|| cg(3.0, cg_fail_iters, 1500.0, 1.0)),
    );
    push(
        "cg_r2_big",
        "resilient CG n=512 r=2 (1024 physical rank tasks), failure-free",
        "vsec/s",
        best_of(|| cg_big(cg_big_iters)),
    );
    out
}

// ---------------------------------------------------------------------
// Profiled run: wall-clock sidecars for the headline scenario
// ---------------------------------------------------------------------

/// Artifacts of one profiled headline run (`--profile`): the JSON span
/// sidecar, the inferno-compatible folded stacks, and the Perfetto export
/// with the wall-clock counter tracks merged in.
#[derive(Debug, Clone)]
pub struct ProfileArtifacts {
    /// The scenario the artifacts describe.
    pub scenario: &'static str,
    /// `redcr-prof/1` JSON sidecar (per-scope span totals and counters).
    pub json: String,
    /// Folded stacks, one `path count_ns` line per frame —
    /// `inferno-flamegraph` input format.
    pub folded: String,
    /// Perfetto export of the run's virtual-time trace with the profiler's
    /// counter tracks merged as `C` events.
    pub perfetto: String,
    /// One-line parking + scheduler summary (task parks/wakes on the
    /// mailbox side, steals/local-hits/idle on the worker side).
    pub summary: String,
}

/// Runs the headline CG scenario (`cg_r3`) once with the wall-clock
/// profiler and the flight recorder both on and renders the sidecars.
///
/// Also cross-checks the dual-clock contract on the spot: the virtual-time
/// critical path rebuilt from the trace must hit the report's
/// `total_virtual_time` bit-for-bit.
///
/// # Panics
///
/// Panics when the run fails or the cross-check does not hold — this runs
/// in CI, loud failure is the point.
pub fn profile_headline(preset: Preset) -> ProfileArtifacts {
    let iterations = match preset {
        Preset::Smoke => 120,
        Preset::Full => 4_000,
    };
    let cfg = ExecutorConfig::new(8, 3.0)
        .node_mtbf(1e12)
        .checkpoint_interval(10.0)
        .checkpoint_cost(0.5)
        .restart_cost(2.0)
        .seed(2012)
        .tracing(true)
        .profiling(true);
    let app = CgApp::new(CgConfig::small(256), iterations);
    let report = ResilientExecutor::new(cfg).run(&app).expect("profiled cg_r3 run");
    let prof = report.profile.as_ref().expect("profiling was enabled");
    let trace = report.trace.as_ref().expect("tracing was enabled");

    let analysis = redcr_mpi::trace::Analysis::analyze(trace).expect("traced run analyzes");
    let path = redcr_mpi::trace::CriticalPath::analyze(&analysis);
    assert_eq!(
        path.total_virtual_time.to_bits(),
        report.total_virtual_time.to_bits(),
        "critical path must replay the report's total bit-exactly"
    );

    let counters: Vec<redcr_mpi::trace::CounterTrack> = prof
        .counter_tracks()
        .into_iter()
        .map(|c| redcr_mpi::trace::CounterTrack {
            scope: c.scope,
            name: c.name,
            samples: c.samples,
        })
        .collect();
    let perfetto = redcr_mpi::trace::perfetto::export_with_counters(trace, &counters)
        .expect("profiled trace exports");
    ProfileArtifacts {
        scenario: HEADLINE_SCENARIO,
        json: prof.to_json(HEADLINE_SCENARIO),
        folded: prof.folded(),
        perfetto,
        summary: format!("{} | {}", prof.park_summary(), prof.sched_summary()),
    }
}

// ---------------------------------------------------------------------
// BENCH_runtime.json: render + baseline-preserving merge
// ---------------------------------------------------------------------

/// A previously recorded measurement set parsed back from the JSON file.
pub type Recorded = BTreeMap<String, Measurement>;

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

fn render_set(out: &mut String, indent: &str, set: &[(String, Measurement)]) {
    for (i, (name, m)) in set.iter().enumerate() {
        let comma = if i + 1 == set.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "{indent}\"{name}\": {{\"wall_s\": {}, \"throughput\": {}}}{comma}",
            fmt_f64(m.wall_s),
            fmt_f64(m.throughput)
        );
    }
}

/// Renders the full `BENCH_runtime.json` document.
///
/// `baseline` is the preserved pre-change measurement set (falling back to
/// `current` when none was ever recorded — i.e. the very first capture
/// becomes its own baseline), `current` is this invocation.
///
/// Every block — `baseline`, `current`, `speedup`, `units` — is emitted in
/// canonical sorted scenario order. (The `baseline` block always was, by
/// virtue of [`Recorded`] being a `BTreeMap`; `current` used to come out
/// in run order, which made the two sets needlessly hard to diff and made
/// the committed file's shape depend on scenario registration order.)
pub fn render_json(
    preset: Preset,
    baseline: &Recorded,
    baseline_note: &str,
    current: &[Scenario],
) -> String {
    let mut by_name: Vec<&Scenario> = current.iter().collect();
    by_name.sort_by_key(|s| s.name);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"redcr-bench-runtime/1\",");
    let _ = writeln!(out, "  \"preset\": \"{}\",", preset.name());
    let _ = writeln!(out, "  \"reps\": {REPS},");
    let _ = writeln!(out, "  \"baseline_note\": {},", quote(baseline_note));
    let _ = writeln!(out, "  \"baseline\": {{");
    let base: Vec<(String, Measurement)> = baseline.iter().map(|(k, v)| (k.clone(), *v)).collect();
    render_set(&mut out, "    ", &base);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"current\": {{");
    let cur: Vec<(String, Measurement)> =
        by_name.iter().map(|s| (s.name.to_string(), s.m)).collect();
    render_set(&mut out, "    ", &cur);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"speedup\": {{");
    let speedups: Vec<(String, f64)> = by_name
        .iter()
        .filter_map(|s| baseline.get(s.name).map(|b| (s.name.to_string(), b.wall_s / s.m.wall_s)))
        .collect();
    for (i, (name, sp)) in speedups.iter().enumerate() {
        let comma = if i + 1 == speedups.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{name}\": {}{comma}", fmt_f64(*sp));
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"units\": {{");
    for (i, s) in by_name.iter().enumerate() {
        let comma = if i + 1 == by_name.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{}\": {}{comma}", s.name, quote(s.unit));
    }
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts the `"baseline"` measurement set (and its note and preset) from
/// a previously written `BENCH_runtime.json`, so re-runs preserve the
/// committed pre-change numbers instead of overwriting them.
///
/// Returns `None` when the document has no parsable baseline (first-ever
/// run, or a hand-edited file).
pub fn parse_baseline(doc: &str) -> Option<(String, String, Recorded)> {
    let preset = string_field(doc, "preset")?;
    let note = string_field(doc, "baseline_note").unwrap_or_default();
    let obj = section(doc, "baseline")?;
    let mut set = Recorded::new();
    let mut rest = obj;
    while let Some(q0) = rest.find('"') {
        let after = &rest[q0 + 1..];
        let q1 = after.find('"')?;
        let name = &after[..q1];
        let after_name = &after[q1 + 1..];
        let open = after_name.find('{')?;
        let close = after_name.find('}')?;
        let body = &after_name[open + 1..close];
        let wall = number_field(body, "wall_s")?;
        let thr = number_field(body, "throughput")?;
        set.insert(name.to_string(), Measurement { wall_s: wall, throughput: thr });
        rest = &after_name[close + 1..];
    }
    if set.is_empty() {
        None
    } else {
        Some((preset, note, set))
    }
}

/// The `{...}` body of a top-level `"key": { ... }` section (flat objects
/// only — exactly the shape [`render_json`] emits).
fn section<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\": {{");
    let start = doc.find(&marker)? + marker.len();
    let rest = &doc[start..];
    let mut depth = 1usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..i]);
                }
            }
            _ => {}
        }
    }
    None
}

fn string_field(doc: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = doc.find(&marker)? + marker.len();
    let rest = &doc[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn number_field(body: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = body.find(&marker)? + marker.len();
    let rest = body[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Renders the human-readable console table for one run.
pub fn render_table(current: &[Scenario], baseline: &Recorded) -> String {
    let mut t = crate::output::TextTable::new().header([
        "scenario",
        "wall s",
        "throughput",
        "unit",
        "speedup",
    ]);
    for s in current {
        let speedup = baseline
            .get(s.name)
            .map(|b| format!("{:.2}x", b.wall_s / s.m.wall_s))
            .unwrap_or_else(|| "-".into());
        t.row([
            s.name.to_string(),
            format!("{:.3}", s.m.wall_s),
            format!("{:.0}", s.m.throughput),
            s.unit.to_string(),
            speedup,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_baseline() {
        let scenarios = vec![
            Scenario {
                name: "pingpong",
                what: "w",
                unit: "msgs/s",
                m: Measurement { wall_s: 1.25, throughput: 160000.0 },
            },
            Scenario {
                name: "cg_r3",
                what: "w",
                unit: "vsec/s",
                m: Measurement { wall_s: 3.5, throughput: 12.0 },
            },
        ];
        let baseline: Recorded = scenarios.iter().map(|s| (s.name.to_string(), s.m)).collect();
        let doc = render_json(Preset::Full, &baseline, "seed capture", &scenarios);
        let (preset, note, parsed) = parse_baseline(&doc).expect("parse back");
        assert_eq!(preset, "full");
        assert_eq!(note, "seed capture");
        assert_eq!(parsed.len(), 2);
        assert!((parsed["pingpong"].wall_s - 1.25).abs() < 1e-9);
        assert!((parsed["cg_r3"].throughput - 12.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_is_baseline_over_current() {
        let current = vec![Scenario {
            name: "cg_r3",
            what: "w",
            unit: "vsec/s",
            m: Measurement { wall_s: 2.0, throughput: 20.0 },
        }];
        let mut baseline = Recorded::new();
        baseline.insert("cg_r3".into(), Measurement { wall_s: 4.0, throughput: 10.0 });
        let doc = render_json(Preset::Full, &baseline, "", &current);
        assert!(doc.contains("\"cg_r3\": 2.000000"), "{doc}");
    }

    #[test]
    fn all_blocks_share_canonical_sorted_order() {
        // Scenarios deliberately registered out of sorted order, as
        // `run_all` does (pingpong before allreduce): every emitted block
        // must still come out sorted, matching the BTreeMap baseline.
        let scenarios = vec![
            Scenario {
                name: "pingpong",
                what: "w",
                unit: "msgs/s",
                m: Measurement { wall_s: 1.0, throughput: 1.0 },
            },
            Scenario {
                name: "allreduce",
                what: "w",
                unit: "allreduce/s",
                m: Measurement { wall_s: 2.0, throughput: 2.0 },
            },
            Scenario {
                name: "cg_r1",
                what: "w",
                unit: "vsec/s",
                m: Measurement { wall_s: 3.0, throughput: 3.0 },
            },
        ];
        let baseline: Recorded = scenarios.iter().map(|s| (s.name.to_string(), s.m)).collect();
        let doc = render_json(Preset::Full, &baseline, "", &scenarios);
        let keys_of = |block: &str| -> Vec<String> {
            section(&doc, block)
                .expect(block)
                .lines()
                .filter_map(|l| {
                    let l = l.trim_start();
                    l.strip_prefix('"').and_then(|r| r.split('"').next()).map(str::to_string)
                })
                .collect()
        };
        let sorted = vec!["allreduce".to_string(), "cg_r1".into(), "pingpong".into()];
        for block in ["baseline", "current", "speedup", "units"] {
            assert_eq!(keys_of(block), sorted, "block {block:?} must be sorted");
        }
    }

    #[test]
    fn smoke_preset_parses() {
        assert_eq!(Preset::parse("SMOKE"), Some(Preset::Smoke));
        assert_eq!(Preset::parse("full"), Some(Preset::Full));
        assert_eq!(Preset::parse("x"), None);
    }
}
