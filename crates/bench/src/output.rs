//! Output helpers: results directory, aligned tables, CSV.

use std::fmt::Write as _;
use std::path::PathBuf;

/// The directory experiment outputs are written to (`results/` at the
/// workspace root, honouring `REDCR_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("REDCR_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // The bench crate lives at <root>/crates/bench.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes `content` to `results/<name>` (creating the directory), and
/// echoes the path.
///
/// # Panics
///
/// Panics on I/O errors — experiment binaries want loud failures.
pub fn write_result(name: &str, content: &str) -> PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write result file");
    path
}

/// A simple fixed-width text table builder.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the header cells.
    pub fn header<S: Into<String>>(mut self, cells: impl IntoIterator<Item = S>) -> Self {
        self.header = cells.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out);
        };
        if !self.header.is_empty() {
            fmt_row(&mut out, &self.header);
            let total: usize = widths.iter().map(|w| w + 2).sum();
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (RFC 4180: cells containing a comma, double quote,
    /// or line break are quoted, with embedded quotes doubled).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(&self.rows) {
            let cells: Vec<String> = row.iter().map(|c| csv_escape(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }
}

/// Quotes `cell` per RFC 4180 when it contains a delimiter, quote, or
/// line break; returns it unchanged otherwise.
fn csv_escape(cell: &str) -> String {
    if cell.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats minutes with one decimal, or `"div"` for divergent entries.
pub fn mins_or_div(v: Option<f64>) -> String {
    match v {
        Some(m) => format!("{m:.1}"),
        None => "div".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_and_csvs() {
        let mut t = TextTable::new().header(["a", "bbbb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        assert!(s.contains("a  bbbb"), "{s}");
        assert!(s.lines().count() >= 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "a,bbbb");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn csv_escapes_delimiters_quotes_and_newlines() {
        let mut t = TextTable::new().header(["label", "note"]);
        t.row(["MTBF 6, 12 h", "plain"]);
        t.row(["say \"daly\"", "line1\nline2"]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "label,note");
        // A comma inside a cell must not create a third column.
        assert_eq!(lines.next().unwrap(), "\"MTBF 6, 12 h\",plain");
        // Embedded quotes double; the embedded newline stays inside the
        // quoted cell, so the record spans two physical lines.
        assert_eq!(lines.next().unwrap(), "\"say \"\"daly\"\"\",\"line1");
        assert_eq!(lines.next().unwrap(), "line2\"");
        assert!(lines.next().is_none());
    }

    #[test]
    fn csv_leaves_plain_cells_unquoted() {
        let mut t = TextTable::new().header(["a", "b"]);
        t.row(["1.5", "ok"]);
        assert_eq!(t.to_csv(), "a,b\n1.5,ok\n");
    }

    #[test]
    fn mins_formatting() {
        assert_eq!(mins_or_div(Some(12.34)), "12.3");
        assert_eq!(mins_or_div(None), "div");
    }

    #[test]
    fn results_dir_is_workspace_level() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }
}
