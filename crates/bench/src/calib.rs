//! Calibrated experiment parameters.
//!
//! The paper does not print every input of its model plots (Figures 2,
//! 4–6, 13–14) and our substrate is a simulator, so a one-time calibration
//! pass fixed the free parameters below. Each constant records what it was
//! tuned against; `EXPERIMENTS.md` documents the resulting paper-vs-ours
//! numbers.

use redcr_apps::cg::CgConfig;
use redcr_apps::compute::ComputeModel;
use redcr_model::combined::CombinedConfig;
use redcr_model::units;
use redcr_mpi::CostModel;
use redcr_red::VoteCost;

use crate::paper::constants;

/// Table 5 runtime calibration: CG problem size for the failure-free runs.
pub const T5_PROBLEM_SIZE: usize = 2048;
/// Table 5: off-diagonals per row.
pub const T5_OFFDIAG: usize = 8;
/// Table 5: virtual ranks of the runtime experiment (scaled down from the
/// paper's 128 to keep a 9-degree sweep fast; the overhead curve is
/// rank-count-insensitive at this message/computation balance).
pub const T5_RANKS: u64 = 16;
/// Table 5: CG iterations per run.
pub const T5_ITERATIONS: u64 = 10;
/// Table 5: per-flop cost calibrated so CG shows α ≈ 0.2 at degree 1 under
/// [`CostModel::infiniband_qdr`] (measured α = 0.189 at this problem size).
pub const T5_SECS_PER_FLOP: f64 = 6e-8;

/// Redundant-copy processing cost calibrated so the failure-free overhead
/// curve matches the paper's Table 5 ratios (46→82 min, i.e. 1.00→1.78,
/// with the super-linear first step):
/// measured ≈ 1.00 1.20 1.30 1.35 1.39 1.59 1.69 1.74 1.78 against the
/// paper's 1.00 1.20 1.28 1.33 1.37 1.52 1.65 1.70 1.78.
pub fn table5_vote_cost() -> VoteCost {
    VoteCost { per_copy: 2.5e-6, per_byte: 0.67e-9 }
}

/// The CG configuration of the Table 5 runtime experiment.
pub fn table5_cg_config() -> CgConfig {
    CgConfig {
        n: T5_PROBLEM_SIZE,
        offdiag_per_row: T5_OFFDIAG,
        seed: 0xC6,
        compute: ComputeModel { secs_per_flop: T5_SECS_PER_FLOP },
    }
}

/// Communication cost model of the runtime experiments.
pub fn table5_cost_model() -> CostModel {
    CostModel::infiniband_qdr()
}

/// The combined-model configuration of the Section 6 cluster experiment
/// (Table 4 / Figures 8, 11, 12) at the given per-process MTBF (hours).
pub fn experiment_config(mtbf_hours: f64) -> CombinedConfig {
    CombinedConfig::builder()
        .virtual_processes(constants::N_PROCESSES)
        .base_time_hours(constants::BASE_TIME_MINS / 60.0)
        .node_mtbf_hours(mtbf_hours)
        .comm_fraction(constants::ALPHA)
        .checkpoint_cost_hours(units::hours_from_secs(constants::CHECKPOINT_SECS))
        .restart_cost_hours(units::hours_from_secs(constants::RESTART_SECS))
        .build()
        .expect("experiment constants are valid")
}

/// Monte-Carlo seeds per Table 4 cell.
pub const T4_SEEDS: usize = 32;

/// Tables 2–3 calibration: fixed checkpoint cost (seconds). Tuned so the
/// 100k-node row lands near the paper's 35% useful work.
pub const T23_CHECKPOINT_SECS: f64 = 180.0;
/// Tables 2–3: fixed restart cost (seconds).
pub const T23_RESTART_SECS: f64 = 550.0;

/// The combined-model configuration behind Tables 2–3.
pub fn sandia_config(nodes: u64, job_hours: f64, mtbf_years: f64) -> CombinedConfig {
    CombinedConfig::builder()
        .virtual_processes(nodes)
        .base_time_hours(job_hours)
        .node_mtbf_hours(units::hours_from_years(mtbf_years))
        .checkpoint_cost_hours(units::hours_from_secs(T23_CHECKPOINT_SECS))
        .restart_cost_hours(units::hours_from_secs(T23_RESTART_SECS))
        .build()
        .expect("sandia constants are valid")
}

/// Figures 13–14 calibration: communication fraction tuned so the model's
/// 1x/2x and 1x/3x crossovers land near the paper's 4,351 and 12,551
/// (ours: 4,445 and 11,334).
pub const F13_ALPHA: f64 = 0.24;
/// Figures 13–14: checkpoint cost, minutes.
pub const F13_CHECKPOINT_MINS: f64 = 10.0;
/// Figures 13–14: restart cost, minutes.
pub const F13_RESTART_MINS: f64 = 30.0;

/// The weak-scaling configuration of Figures 13–14 (process count is
/// swept; the value here is a placeholder).
pub fn scaling_config() -> CombinedConfig {
    CombinedConfig::builder()
        .virtual_processes(1_000)
        .base_time_hours(128.0)
        .node_mtbf_hours(units::hours_from_years(5.0))
        .comm_fraction(F13_ALPHA)
        .checkpoint_cost_hours(units::hours_from_mins(F13_CHECKPOINT_MINS))
        .restart_cost_hours(units::hours_from_mins(F13_RESTART_MINS))
        .build()
        .expect("scaling constants are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_build() {
        assert_eq!(experiment_config(12.0).n_virtual, 128);
        assert_eq!(sandia_config(100_000, 168.0, 5.0).node_mtbf, 43_800.0);
        assert_eq!(scaling_config().alpha, F13_ALPHA);
        assert!(table5_vote_cost().per_copy > 0.0);
        assert_eq!(table5_cg_config().n, T5_PROBLEM_SIZE);
    }
}
