//! Figures 4–6 — modeled total execution time over varying redundancy
//! degree for three configurations of a 128-hour job, with the paper's
//! per-figure annotations (T_min, T_max, T_{r=1}, expected checkpoints, λ).
//!
//! The paper labels these "sample input parameters" without printing them;
//! our configurations vary exactly the quantities the paper says the
//! figures vary — checkpoint cost `c` between configs 1 and 3 (Daly's δ_opt
//! then shrinks by √10, the relation the paper calls out) and node MTBF
//! between configs 1 and 2.

use redcr_model::combined::{CombinedConfig, CombinedOutcome};
use redcr_model::units;

use crate::output::TextTable;

/// One figure's data.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Which paper figure this reproduces (4, 5 or 6).
    pub figure: u32,
    /// Configuration description.
    pub label: String,
    /// `(degree, outcome)` per grid point (`None` where divergent).
    pub sweep: Vec<(f64, Option<CombinedOutcome>)>,
}

impl FigureData {
    /// `(T_min, argmin degree)`.
    pub fn t_min(&self) -> (f64, f64) {
        self.sweep
            .iter()
            .filter_map(|(d, o)| o.as_ref().map(|o| (o.total_time, *d)))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("at least one point converges")
    }

    /// Maximum finite total time.
    pub fn t_max(&self) -> f64 {
        self.sweep
            .iter()
            .filter_map(|(_, o)| o.as_ref().map(|o| o.total_time))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Total time at degree 1 (if it converges).
    pub fn t_at_1x(&self) -> Option<f64> {
        self.sweep.first().and_then(|(_, o)| o.as_ref()).map(|o| o.total_time)
    }
}

fn config(figure: u32) -> (String, CombinedConfig) {
    // Common: 128-hour job on 10,000 virtual processes.
    let base = |theta_years: f64, alpha: f64, c_secs: f64| {
        CombinedConfig::builder()
            .virtual_processes(10_000)
            .base_time_hours(128.0)
            .node_mtbf_hours(units::hours_from_years(theta_years))
            .comm_fraction(alpha)
            .checkpoint_cost_hours(units::hours_from_secs(c_secs))
            .restart_cost_hours(units::hours_from_mins(30.0))
            .build()
            .expect("valid figure config")
    };
    match figure {
        4 => ("config 1: theta=5y, alpha=0.2, c=600s".into(), base(5.0, 0.2, 600.0)),
        5 => ("config 2: theta=2.5y, alpha=0.2, c=600s".into(), base(2.5, 0.2, 600.0)),
        6 => ("config 3: theta=5y, alpha=0.2, c=60s".into(), base(5.0, 0.2, 60.0)),
        _ => panic!("figures 4-6 only"),
    }
}

/// The degree grid of the figures.
pub fn degree_grid() -> Vec<f64> {
    (0..=40).map(|i| 1.0 + 0.05 * i as f64).collect()
}

/// Generates one figure's sweep.
pub fn generate(figure: u32) -> FigureData {
    let (label, cfg) = config(figure);
    let sweep =
        degree_grid().into_iter().map(|d| (d, cfg.with_degree(d).evaluate().ok())).collect();
    FigureData { figure, label, sweep }
}

/// Renders one figure with its annotations.
pub fn render(data: &FigureData) -> String {
    let mut t = TextTable::new().header(["r", "T_total [h]", "δ [h]", "#ckpts", "λ [1/h]"]);
    for (d, o) in &data.sweep {
        // Print the quarter steps only; the full grid goes to CSV.
        if (d * 4.0).fract().abs() > 1e-9 {
            continue;
        }
        match o {
            Some(o) => t.row([
                format!("{d:.2}"),
                format!("{:.1}", o.total_time),
                format!("{:.2}", o.checkpoint_interval),
                format!("{:.0}", o.expected_checkpoints),
                format!("{:.4}", o.system_failure_rate),
            ]),
            None => t.row([format!("{d:.2}"), "div".into(), "-".into(), "-".into(), "-".into()]),
        };
    }
    let (t_min, at) = data.t_min();
    format!(
        "Figure {}. Total execution time vs redundancy degree\n({})\n\n{}\n\
         T_min = {:.1} h at r = {:.2};  T_max = {:.1} h;  T(r=1) = {}\n",
        data.figure,
        data.label,
        t.render(),
        t_min,
        at,
        data.t_max(),
        data.t_at_1x().map(|v| format!("{v:.1} h")).unwrap_or_else(|| "divergent".into()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_figures_minimize_at_dual_redundancy() {
        // The paper: "Immediately apparent from the figures is that a
        // redundancy level of 2 is the best choice in all cases."
        for figure in [4, 5, 6] {
            let data = generate(figure);
            let (_, at) = data.t_min();
            assert!((1.9..=2.15).contains(&at), "figure {figure} minimum at r={at}, expected ~2");
        }
    }

    #[test]
    fn daly_interval_scales_sqrt10_between_configs_1_and_3() {
        let f4 = generate(4);
        let f6 = generate(6);
        let delta_at_1x = |d: &FigureData| {
            d.sweep
                .first()
                .and_then(|(_, o)| o.as_ref())
                .map(|o| o.checkpoint_interval)
                .expect("1x converges")
        };
        let ratio = delta_at_1x(&f4) / delta_at_1x(&f6);
        assert!(
            (ratio - 10f64.sqrt()).abs() < 0.2,
            "δ_opt ratio {ratio} should be ≈ √10 (paper Section 4.3)"
        );
    }

    #[test]
    fn lower_mtbf_raises_times() {
        let f4 = generate(4);
        let f5 = generate(5);
        assert!(f5.t_min().0 > f4.t_min().0, "θ=2.5y must be slower than θ=5y");
    }
}
