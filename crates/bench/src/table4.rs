//! Table 4 / Figures 8–9 — execution time under combined C/R + redundancy
//! with fault injection, for every MTBF × degree cell.
//!
//! Reproduction strategy (hybrid, mirroring the paper's procedure): the
//! failure-free redundant execution time `t_Red(r)` comes from the **real
//! runtime measurement** (Table 5's curve — this is what injects the
//! super-linear overhead the paper observes), and the fault-injection /
//! checkpoint / restart timeline is replayed by the Monte-Carlo simulator
//! at the paper's measured constants (`c = 120 s`, `R = 500 s`,
//! Daly-interval checkpointing, failures not injected during overheads).

use redcr_cluster::failure_source::SphereSource;
use redcr_cluster::job::{FailureExposure, JobConfig};
use redcr_cluster::simulate::simulate_job;
use redcr_cluster::sweep::monte_carlo;
use redcr_fault::ReplicaGroups;
use redcr_model::redundancy::SystemModel;
use redcr_model::units;

use crate::calib::{self, experiment_config};
use crate::output::{mins_or_div, TextTable};
use crate::paper::{constants, DEGREES, TABLE4};
use crate::table5::Table5;

/// One Table 4 cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Per-process MTBF, hours.
    pub mtbf_hours: f64,
    /// Redundancy degree.
    pub degree: f64,
    /// Mean execution time over the Monte-Carlo seeds, minutes (`None` if
    /// the configuration diverged).
    pub minutes: Option<f64>,
}

/// The full matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// Rows by MTBF, columns by [`DEGREES`].
    pub rows: Vec<(f64, Vec<Cell>)>,
}

impl Table4 {
    /// The degree with minimum time for a given MTBF row.
    pub fn argmin_degree(&self, row: usize) -> f64 {
        let cells = &self.rows[row].1;
        cells
            .iter()
            .filter_map(|c| c.minutes.map(|m| (c.degree, m)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(d, _)| d)
            .expect("at least one cell completes")
    }
}

/// Simulates one cell: `t_Red` from the measured curve, failures from the
/// per-process sphere sampler.
pub fn simulate_cell(t5: &Table5, mtbf_hours: f64, degree_idx: usize, seeds: usize) -> Cell {
    let degree = DEGREES[degree_idx];
    let cfg = experiment_config(mtbf_hours).with_degree(degree);
    // Work amount: the measured failure-free time at this degree, hours.
    let work_hours = t5.observed_minutes[degree_idx] / 60.0;
    // Daly interval from the analytic system MTBF at this degree.
    let system =
        SystemModel::with_approximation(cfg.n_virtual, degree, cfg.node_mtbf, cfg.approximation)
            .expect("valid system");
    let sys = system.evaluate(work_hours).expect("valid horizon");
    let interval = if sys.failure_rate == 0.0 {
        work_hours
    } else {
        cfg.interval_policy.interval(cfg.checkpoint_cost, sys.mtbf).expect("valid interval")
    };
    let partition = cfg.partition().expect("valid partition");
    let counts: Vec<usize> =
        (0..partition.n_virtual()).map(|v| partition.replicas_of(v) as usize).collect();
    let job = JobConfig {
        work: work_hours,
        checkpoint_cost: units::hours_from_secs(constants::CHECKPOINT_SECS),
        checkpoint_interval: interval,
        restart_cost: units::hours_from_secs(constants::RESTART_SECS),
        // The paper's experiments do not inject failures during
        // checkpoints or restarts (Section 6(5)).
        exposure: FailureExposure::WorkOnly,
        max_attempts: 200_000,
    };
    let node_mtbf = cfg.node_mtbf;
    let agg = monte_carlo(seeds, crate::worker_threads(), |seed| {
        let groups = ReplicaGroups::from_counts(&counts);
        let mut source = SphereSource::new(groups, node_mtbf, seed);
        simulate_job(&job, &mut source)
    });
    let minutes = match agg {
        Ok(agg) if agg.completed > 0 => Some(agg.mean_total_time * 60.0),
        _ => None,
    };
    Cell { mtbf_hours, degree, minutes }
}

/// Generates the full Table 4 matrix from a measured Table 5 curve.
pub fn generate(t5: &Table5, seeds: usize) -> Table4 {
    let rows = constants::MTBF_HOURS
        .iter()
        .map(|&mtbf| {
            let cells = (0..DEGREES.len()).map(|i| simulate_cell(t5, mtbf, i, seeds)).collect();
            (mtbf, cells)
        })
        .collect();
    Table4 { rows }
}

/// Renders the matrix with per-row minima and paper reference rows.
pub fn render(t4: &Table4) -> String {
    let mut t = TextTable::new()
        .header(std::iter::once("MTBF".to_string()).chain(DEGREES.iter().map(|d| format!("{d}x"))));
    for (i, (mtbf, cells)) in t4.rows.iter().enumerate() {
        let min_degree = t4.argmin_degree(i);
        let mut row = vec![format!("{mtbf:.0} hrs")];
        for c in cells {
            let mark = if c.degree == min_degree { "*" } else { "" };
            row.push(format!("{}{}", mins_or_div(c.minutes), mark));
        }
        t.row(row);
    }
    let mut paper_t = TextTable::new()
        .header(std::iter::once("MTBF".to_string()).chain(DEGREES.iter().map(|d| format!("{d}x"))));
    for (mtbf, row) in TABLE4 {
        let mut cells = vec![format!("{mtbf:.0} hrs")];
        cells.extend(row.iter().map(|v| format!("{v:.0}")));
        paper_t.row(cells);
    }
    format!(
        "Table 4 / Figures 8-9. Execution time [minutes] for combined\n\
         C/R + redundancy ({} virtual processes, {} Monte-Carlo seeds per cell,\n\
         t_Red from the measured Table 5 curve; * = row minimum)\n\n{}\n\
         paper reference:\n\n{}",
        constants::N_PROCESSES,
        calib::T4_SEEDS,
        t.render(),
        paper_t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table5;

    #[test]
    fn redundancy_wins_and_triple_gains_as_mtbf_falls() {
        // Smaller seed count for test speed; the shape is robust.
        let t5 = table5::generate();
        let t4 = generate(&t5, 12);
        // Minima always at r >= 2 ("a redundancy level of 2 [or more] is
        // the best choice in all cases").
        for i in 0..t4.rows.len() {
            assert!(t4.argmin_degree(i) >= 2.0, "row {i} min at {}", t4.argmin_degree(i));
        }
        // Every row's 1x time exceeds its 2x time (C/R alone loses).
        for (i, (mtbf, cells)) in t4.rows.iter().enumerate() {
            let t1 = cells[0].minutes.unwrap_or(f64::INFINITY);
            let t2 = cells[4].minutes.expect("2x completes");
            assert!(t1 > t2, "row {i} (MTBF {mtbf}): 1x {t1} <= 2x {t2}");
        }
        // Triple redundancy becomes relatively more attractive as the MTBF
        // drops (the paper's 6h row flips to 3x-optimal; in our
        // reproduction the 2x/3x gap collapses to a couple of percent at
        // 6h while 3x loses clearly at 30h).
        let gap = |row: usize| {
            let cells = &t4.rows[row].1;
            cells[8].minutes.expect("3x completes") / cells[4].minutes.expect("2x completes")
        };
        assert!(
            gap(0) < gap(4) - 0.05,
            "3x/2x gap must shrink as MTBF falls: 6h {} vs 30h {}",
            gap(0),
            gap(4)
        );
        assert!(gap(0) < 1.12, "3x within striking distance of 2x at 6h: {}", gap(0));
    }

    #[test]
    fn quarter_step_penalty_visible() {
        // Paper observation (4): 1.25x tends to be no better than 1x, and
        // 2.25x no better than 2x, because the overhead jump outweighs the
        // reliability gain. With the measured overhead curve this shows up
        // in at least the majority of rows.
        let t5 = table5::generate();
        let t4 = generate(&t5, 12);
        let mut quarter_worse = 0;
        for (_, cells) in &t4.rows {
            let t2 = cells[4].minutes.unwrap_or(f64::INFINITY);
            let t225 = cells[5].minutes.unwrap_or(f64::INFINITY);
            if t225 >= t2 {
                quarter_worse += 1;
            }
        }
        assert!(quarter_worse >= 3, "2.25x should usually lose to 2x: {quarter_worse}/5");
    }
}
