//! Figures 13 and 14 — modeled wallclock of a 128-hour job under weak
//! scaling, for redundancy degrees {1, 1.5, 2, 2.5, 3}, up to 30k
//! (Figure 13) and 200k (Figure 14) processes, plus the landmark process
//! counts: the 1x/2x and 1x/3x crossovers, the two-jobs-for-one throughput
//! point, and where triple redundancy takes the lead.

use redcr_model::optimizer::{crossover, throughput_break_even, time_at};

use crate::calib::scaling_config;
use crate::output::TextTable;
use crate::paper::landmarks;

/// Degrees plotted in the figures.
pub const CURVE_DEGREES: [f64; 5] = [1.0, 1.5, 2.0, 2.5, 3.0];

/// The scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingData {
    /// Process counts sampled.
    pub process_counts: Vec<u64>,
    /// Per degree: total time (hours) at each count (`None` = divergent).
    pub curves: Vec<(f64, Vec<Option<f64>>)>,
}

/// Landmark process counts from our calibrated model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Landmarks {
    /// First N where 2x completes no later than 1x.
    pub cross_1x_2x: Option<u64>,
    /// First N where 3x completes no later than 1x.
    pub cross_1x_3x: Option<u64>,
    /// First N where one 1x job takes at least twice a 2x job.
    pub throughput_2x: Option<u64>,
    /// First N where 3x beats 2x.
    pub triple_best_beyond: Option<u64>,
}

/// The figures' logarithmically spaced process-count samples: `points`
/// values from 100 to `max_n` inclusive (also the grid the sweep service
/// reproduces, so the spacing is shared).
pub fn process_grid(max_n: u64, points: usize) -> Vec<u64> {
    let min_n = 100u64;
    let log_lo = (min_n as f64).ln();
    let log_hi = (max_n as f64).ln();
    (0..points)
        .map(|i| {
            let f = log_lo + (log_hi - log_lo) * i as f64 / (points - 1) as f64;
            f.exp().round() as u64
        })
        .collect()
}

/// Generates the sweep for process counts up to `max_n` with `points`
/// logarithmically spaced samples.
pub fn generate(max_n: u64, points: usize) -> ScalingData {
    let cfg = scaling_config();
    let process_counts = process_grid(max_n, points);
    let curves = CURVE_DEGREES
        .iter()
        .map(|&degree| {
            let times = process_counts.iter().map(|&n| time_at(&cfg, n, degree)).collect();
            (degree, times)
        })
        .collect();
    ScalingData { process_counts, curves }
}

/// Computes the landmark points.
pub fn find_landmarks() -> Landmarks {
    let cfg = scaling_config();
    Landmarks {
        cross_1x_2x: crossover(&cfg, 1.0, 2.0, 100, 10_000_000).ok(),
        cross_1x_3x: crossover(&cfg, 1.0, 3.0, 100, 10_000_000).ok(),
        throughput_2x: throughput_break_even(&cfg, 2.0, 2.0, 100, 2_000_000).ok(),
        triple_best_beyond: crossover(&cfg, 2.0, 3.0, 100, 10_000_000).ok(),
    }
}

/// Renders one figure's sweep table plus the landmarks.
pub fn render(data: &ScalingData, figure: u32, marks: &Landmarks) -> String {
    let mut t = TextTable::new().header(
        std::iter::once("N procs".to_string())
            .chain(CURVE_DEGREES.iter().map(|d| format!("{d}x [h]"))),
    );
    for (i, n) in data.process_counts.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (_, times) in &data.curves {
            row.push(match times[i] {
                Some(v) => format!("{v:.1}"),
                None => "div".into(),
            });
        }
        t.row(row);
    }
    let fmt = |v: Option<u64>| v.map(|n| n.to_string()).unwrap_or_else(|| "none".into());
    format!(
        "Figure {figure}. Modeled wallclock of a 128-hour job under weak scaling\n\
         (5-year node MTBF, α = {}, c = {} min, R = {} min)\n\n{}\n\
         landmarks (ours vs paper):\n\
           1x/2x crossover        : {} (paper {})\n\
           1x/3x crossover        : {} (paper {})\n\
           2x throughput (2-for-1): {} (paper {})\n\
           3x best beyond         : {} (paper {})\n",
        crate::calib::F13_ALPHA,
        crate::calib::F13_CHECKPOINT_MINS,
        crate::calib::F13_RESTART_MINS,
        t.render(),
        fmt(marks.cross_1x_2x),
        landmarks::CROSS_1X_2X,
        fmt(marks.cross_1x_3x),
        landmarks::CROSS_1X_3X,
        fmt(marks.throughput_2x),
        landmarks::THROUGHPUT_2X,
        fmt(marks.triple_best_beyond),
        landmarks::TRIPLE_BEST_BEYOND,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn landmarks_near_paper_values() {
        let m = find_landmarks();
        let x12 = m.cross_1x_2x.expect("1x/2x crossover exists");
        let x13 = m.cross_1x_3x.expect("1x/3x crossover exists");
        let x23 = m.triple_best_beyond.expect("2x/3x crossover exists");
        // Within 2x of the paper's landmark positions (calibrated: we land
        // within ~15% on the crossovers).
        assert!((2_000..=9_000).contains(&x12), "1x/2x at {x12}");
        assert!((6_000..=25_000).contains(&x13), "1x/3x at {x13}");
        assert!((400_000..=1_800_000).contains(&x23), "2x/3x at {x23}");
        assert!(x12 < x13, "dual pays off before triple");
        assert!(x13 < x23);
    }

    #[test]
    fn one_x_blows_up_beyond_80k() {
        // Figure 14: "pure C/R without redundancy results at exponential
        // increases in execution time after ~80,000 nodes".
        let data = generate(200_000, 24);
        let (_, ref times_1x) = data.curves[0];
        let last = times_1x.last().unwrap();
        let t2_last = data.curves[2].1.last().unwrap().expect("2x converges at 200k");
        match last {
            None => {} // diverged outright — certainly "exponential increase"
            Some(v) => {
                assert!(*v > 4.0 * t2_last, "1x at 200k ({v} h) should dwarf 2x ({t2_last} h)")
            }
        }
    }

    #[test]
    fn two_x_flat_under_weak_scaling() {
        // Dual redundancy's curve stays nearly flat to 200k processes (the
        // "redundancy scales" property).
        let data = generate(200_000, 24);
        let (_, ref t2) = data.curves[2];
        let first = t2.first().unwrap().expect("2x at small N");
        let last = t2.last().unwrap().expect("2x at 200k");
        assert!(last < 1.3 * first, "2x grew too much: {first} -> {last}");
    }
}
