//! Figure 12 — observed (Monte-Carlo over the measured overhead curve)
//! versus modeled (simplified model) performance, with a Q-Q-style fit
//! summary.

use redcr_model::combined::SimplifiedForm;

use crate::output::TextTable;
use crate::paper::{constants, DEGREES};
use crate::table4::Table4;
use crate::{fig11, table4, table5};

/// The paired observed/modeled data.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Per selected MTBF: `(mtbf, observed minutes, modeled minutes)`.
    pub rows: Vec<(f64, Vec<Option<f64>>, Vec<f64>)>,
}

impl Fig12 {
    /// The paired `(observed, modeled)` samples (finite only).
    pub fn pairs(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for (_, obs, model) in &self.rows {
            for (o, m) in obs.iter().zip(model) {
                if let Some(o) = o {
                    if m.is_finite() {
                        out.push((*o, *m));
                    }
                }
            }
        }
        out
    }

    /// Pearson correlation between observed and modeled times — the
    /// quantitative stand-in for the paper's "Q-Q plot indicates a close
    /// fit".
    pub fn correlation(&self) -> f64 {
        let pairs = self.pairs();
        let n = pairs.len() as f64;
        if n < 2.0 {
            return f64::NAN;
        }
        let (mx, my) = (
            pairs.iter().map(|p| p.0).sum::<f64>() / n,
            pairs.iter().map(|p| p.1).sum::<f64>() / n,
        );
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (x, y) in &pairs {
            cov += (x - mx) * (y - my);
            vx += (x - mx).powi(2);
            vy += (y - my).powi(2);
        }
        cov / (vx.sqrt() * vy.sqrt())
    }

    /// Mean relative deviation of modeled from observed.
    pub fn mean_relative_error(&self) -> f64 {
        let pairs = self.pairs();
        if pairs.is_empty() {
            return f64::NAN;
        }
        pairs.iter().map(|(o, m)| ((m - o) / o).abs()).sum::<f64>() / pairs.len() as f64
    }
}

/// Generates the overlay from an already-generated Table 4 (observed) and
/// the simplified model, for the selected MTBFs (the paper overlays a
/// subset for legibility).
pub fn generate_from(t4: &Table4, mtbfs: &[f64]) -> Fig12 {
    let model = fig11::generate(SimplifiedForm::Consistent);
    let rows = mtbfs
        .iter()
        .map(|&mtbf| {
            let obs_row = t4
                .rows
                .iter()
                .find(|(m, _)| (*m - mtbf).abs() < 1e-9)
                .map(|(_, cells)| cells.iter().map(|c| c.minutes).collect())
                .unwrap_or_else(|| vec![None; DEGREES.len()]);
            let model_row = model
                .rows
                .iter()
                .find(|(m, _)| (*m - mtbf).abs() < 1e-9)
                .map(|(_, row)| row.clone())
                .unwrap_or_else(|| vec![f64::INFINITY; DEGREES.len()]);
            (mtbf, obs_row, model_row)
        })
        .collect();
    Fig12 { rows }
}

/// Generates everything from scratch (measured curve + Monte Carlo).
pub fn generate(seeds: usize) -> Fig12 {
    let t5 = table5::generate();
    let t4 = table4::generate(&t5, seeds);
    generate_from(&t4, &constants::MTBF_HOURS)
}

/// Renders the overlay plus the fit summary.
pub fn render(fig: &Fig12) -> String {
    let mut t = TextTable::new().header(
        std::iter::once("series".to_string()).chain(DEGREES.iter().map(|d| format!("{d}x"))),
    );
    for (mtbf, obs, model) in &fig.rows {
        let mut row = vec![format!("observed {mtbf:.0}h")];
        row.extend(obs.iter().map(|v| crate::output::mins_or_div(*v)));
        t.row(row);
        let mut row = vec![format!("modeled  {mtbf:.0}h")];
        row.extend(model.iter().map(
            |v| {
                if v.is_finite() {
                    format!("{v:.1}")
                } else {
                    "div".into()
                }
            },
        ));
        t.row(row);
    }
    format!(
        "Figure 12. Observed vs modeled performance [minutes]\n\n{}\n\
         fit: Pearson r = {:.3}, mean |relative error| = {:.1}%\n",
        t.render(),
        fig.correlation(),
        fig.mean_relative_error() * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_and_modeled_track_each_other() {
        let fig = generate(10);
        let r = fig.correlation();
        assert!(r > 0.8, "observed/modeled correlation {r} too weak");
        let mre = fig.mean_relative_error();
        assert!(mre < 0.35, "mean relative error {mre} too large");
    }
}
