//! Chaos-mode harness: seeded kill/heal race sweeps for the self-healing
//! layer, gated on bit-determinism.
//!
//! Each scenario drives the resilient executor through a hostile corner of
//! the respawn protocol — two replicas dying inside one heartbeat window, a
//! donor dying while its state transfer is in flight, a kill landing on the
//! checkpoint quiesce a deferred heal rides on — and every scenario is run
//! **twice**: the totals and the flight-recorder JSONL must repeat
//! bit-for-bit (FNV-1a over the trace bytes), because a heal cycle ends
//! attempts cooperatively (quiesce) rather than through the wall-clock
//! abort edge, and so must stay inside the virtual-time determinism
//! contract. The `chaos` binary exits non-zero if any scenario breaks its
//! expectation or its determinism gate.

use redcr_apps::cg::CgConfig;
use redcr_core::apps::CgApp;
use redcr_core::{ExecutorConfig, ResilientExecutor};
use redcr_mpi::trace::EventKind;
use redcr_red::HealPolicy;

/// FNV-1a over bytes — the same tiny stable hash the determinism gate pins.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One seeded kill/heal race.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Scenario name (artifact/report key).
    pub name: &'static str,
    /// One-line description of the race being provoked.
    pub what: &'static str,
    /// Full executor configuration (tracing forced on by the runner).
    pub cfg: ExecutorConfig,
    /// CG iterations to run.
    pub iterations: u64,
    /// Minimum respawns the scenario must produce.
    pub min_respawns: u64,
    /// Minimum failed attempts (restarts) the scenario must produce.
    pub min_failures: u64,
    /// Whether a heal cycle must respawn ≥ 2 replicas at one commit
    /// instant (the double-kill race).
    pub wants_multi_respawn_cycle: bool,
}

/// What one scenario produced, with its determinism verdict.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Attempts performed.
    pub attempts: u64,
    /// Failed attempts (restarts).
    pub failures: u64,
    /// Replicas respawned by healing.
    pub respawns: u64,
    /// Largest number of replicas respawned at a single commit instant.
    pub max_cycle_respawns: u64,
    /// Process deaths masked by redundancy.
    pub masked_failures: u64,
    /// Total virtual seconds.
    pub total_virtual_time: f64,
    /// Flight-recorder JSONL line count.
    pub trace_lines: usize,
    /// FNV-1a of the JSONL bytes.
    pub trace_fnv: u64,
    /// Both runs repeated bit-for-bit (totals and trace bytes).
    pub deterministic: bool,
    /// The scenario met its structural expectations (respawns, failures,
    /// multi-respawn cycle).
    pub expectation_met: bool,
}

fn chaos_base(seed: u64) -> ExecutorConfig {
    ExecutorConfig::new(4, 3.0)
        .node_mtbf(30.0)
        .checkpoint_interval(6.0)
        .checkpoint_cost(0.2)
        .restart_cost(1.0)
        .seed(seed)
        .tracing(true)
        .respawn_cost(0.5)
        .transfer_cost_per_byte(1e-4)
}

/// The seeded sweep. Seeds are pinned to schedules (verified over repeated
/// runs) whose every attempt ends cooperatively — completed, or killed
/// mid-transfer at the heal boundary — keeping the whole scenario inside
/// the determinism contract; the runner re-verifies that on every
/// invocation by running each scenario twice.
pub fn scenarios() -> Vec<ChaosScenario> {
    vec![
        ChaosScenario {
            name: "double_kill_one_heartbeat",
            what: "two replicas die inside one heartbeat window; one cycle heals both",
            // A 2 s heartbeat at a 30 s per-node MTBF across 12 processes
            // makes same-window double deaths routine.
            cfg: chaos_base(6).heal_policy(HealPolicy::OnDegrade).heartbeat_period(2.0).suspicion_timeout(2.0),
            iterations: 20,
            min_respawns: 2,
            min_failures: 0,
            wants_multi_respawn_cycle: true,
        },
        ChaosScenario {
            name: "kill_during_transfer",
            what: "a donor dies while its state transfer is in flight; the heal aborts into a restart",
            // A brutal modeled transfer cost stretches the boundary→commit
            // window until a surviving donor's death lands inside it.
            cfg: chaos_base(2)
                .heal_policy(HealPolicy::OnDegrade)
                .heartbeat_period(0.5)
                .suspicion_timeout(0.5)
                .transfer_cost_per_byte(1e-2),
            iterations: 20,
            min_respawns: 0,
            min_failures: 1,
            wants_multi_respawn_cycle: false,
        },
        ChaosScenario {
            name: "kill_at_checkpoint_quiesce",
            what: "deaths ride until the checkpoint quiesce; the deferred heal replaces the checkpoint",
            cfg: chaos_base(3).heal_policy(HealPolicy::AtCheckpoint).heartbeat_period(0.5).suspicion_timeout(0.5),
            iterations: 20,
            min_respawns: 1,
            min_failures: 0,
            wants_multi_respawn_cycle: false,
        },
    ]
}

struct RunCapture {
    attempts: u64,
    failures: u64,
    respawns: u64,
    max_cycle_respawns: u64,
    masked_failures: u64,
    total_bits: u64,
    total_virtual_time: f64,
    jsonl: String,
}

fn run_once(s: &ChaosScenario) -> RunCapture {
    let app = CgApp::new(CgConfig::small(32), s.iterations).with_step_pad(1.0);
    let report = ResilientExecutor::new(s.cfg.clone()).run(&app).expect("chaos run");
    let trace = report.trace.as_ref().expect("chaos runs are traced");
    // Commit instants with their multiplicity: the double-kill race shows
    // up as one commit time carrying several RespawnCommit events.
    let mut cycles: Vec<(u64, f64)> = Vec::new();
    for e in &trace.events {
        if let EventKind::RespawnCommit { .. } = e.kind {
            if let Some(c) = cycles.iter_mut().find(|c| c.1 == e.time) {
                c.0 += 1;
            } else {
                cycles.push((1, e.time));
            }
        }
    }
    RunCapture {
        attempts: report.attempts,
        failures: report.failures,
        respawns: report.respawns,
        max_cycle_respawns: cycles.iter().map(|c| c.0).max().unwrap_or(0),
        masked_failures: report.masked_failures,
        total_bits: report.total_virtual_time.to_bits(),
        total_virtual_time: report.total_virtual_time,
        jsonl: trace.to_jsonl(),
    }
}

/// Runs one scenario twice and folds both runs into its outcome.
pub fn run_scenario(s: &ChaosScenario) -> ChaosOutcome {
    let a = run_once(s);
    let b = run_once(s);
    let deterministic = a.total_bits == b.total_bits && a.jsonl == b.jsonl;
    let expectation_met = a.respawns >= s.min_respawns
        && a.failures >= s.min_failures
        && (!s.wants_multi_respawn_cycle || a.max_cycle_respawns >= 2);
    ChaosOutcome {
        name: s.name,
        attempts: a.attempts,
        failures: a.failures,
        respawns: a.respawns,
        max_cycle_respawns: a.max_cycle_respawns,
        masked_failures: a.masked_failures,
        total_virtual_time: a.total_virtual_time,
        trace_lines: a.jsonl.lines().count(),
        trace_fnv: fnv1a(a.jsonl.as_bytes()),
        deterministic,
        expectation_met,
    }
}

/// Executes the full sweep.
pub fn generate() -> Vec<ChaosOutcome> {
    scenarios().iter().map(run_scenario).collect()
}

/// Renders the printable chaos report.
pub fn render(outcomes: &[ChaosOutcome]) -> String {
    let mut out = String::from("chaos sweep: kill/heal races under the determinism gate\n\n");
    for (s, o) in scenarios().iter().zip(outcomes) {
        out.push_str(&format!(
            "== {} ==\n   {}\n   attempts {} ({} failures), respawns {} (max {}/cycle), \
             masked {}, {:.3} virtual s\n   trace {} lines, fnv {:#018x} — {}, {}\n\n",
            o.name,
            s.what,
            o.attempts,
            o.failures,
            o.respawns,
            o.max_cycle_respawns,
            o.masked_failures,
            o.total_virtual_time,
            o.trace_lines,
            o.trace_fnv,
            if o.deterministic { "deterministic" } else { "NON-DETERMINISTIC" },
            if o.expectation_met { "expectation met" } else { "EXPECTATION MISSED" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_deterministic_and_on_script() {
        for o in generate() {
            assert!(o.deterministic, "{}: trace or totals did not repeat", o.name);
            assert!(o.expectation_met, "{}: race did not materialize: {o:?}", o.name);
        }
    }
}
