//! # redcr-bench — regenerating every table and figure of the paper
//!
//! One module per experiment; one binary per table/figure (plus `all`).
//! Each module exposes a `generate()` function returning structured rows
//! and a `render()` producing the printable table, so integration tests can
//! assert the *shape* of each reproduction (who wins, where minima and
//! crossovers fall) without string scraping.
//!
//! Absolute numbers are not expected to match the paper — the substrate is
//! a virtual-time simulator, not the authors' 2012 cluster — but the shape
//! claims are asserted in `tests/shape.rs` and recorded against the paper's
//! values in `EXPERIMENTS.md`.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p redcr-bench --release --bin all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
pub mod chaos;
pub mod fig11;
pub mod fig12;
pub mod fig13_14;
pub mod fig2;
pub mod fig4_6;
pub mod output;
pub mod paper;
pub mod runtime;
pub mod sweepbench;
pub mod table1;
pub mod table2_3;
pub mod table4;
pub mod table5;
pub mod validation;
pub mod window;

/// Worker-thread count for Monte-Carlo sweeps: the machine's available
/// parallelism, clamped to `[1, 64]`, falling back to 8 when the host
/// cannot report it.
pub fn worker_threads() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(8).clamp(1, 64)
}
