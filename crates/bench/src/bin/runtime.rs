//! Wall-clock runtime benchmark: measures how fast the simulator itself
//! runs (not virtual time) and writes `BENCH_runtime.json` at the repo
//! root, preserving the committed pre-change baseline so every run reports
//! a speedup trajectory.
//!
//! ```text
//! cargo run --release -p redcr-bench --bin runtime            # full preset
//! cargo run --release -p redcr-bench --bin runtime -- smoke   # CI preset
//! cargo run --release -p redcr-bench --bin runtime -- smoke --profile
//! ```
//!
//! Set `REDCR_BENCH_RESET_BASELINE=1` to overwrite the stored baseline
//! with this run's numbers (used exactly once, before a perf change, to
//! capture the "before" measurement).
//!
//! With `--profile`, the headline scenario (`cg_r3`) additionally runs
//! once with the wall-clock self-profiler and the flight recorder on,
//! writing `profile_cg_r3.json` (span/counter sidecar),
//! `profile_cg_r3.folded` (inferno flamegraph input) and
//! `profile_cg_r3.perfetto.json` (virtual-time trace with the wall-clock
//! counter tracks merged) under `results/` (honouring
//! `REDCR_RESULTS_DIR`). The profiled run is *not* part of the timed
//! measurements — the recorded benchmark numbers always come from
//! profiler-off runs.

use std::path::PathBuf;

use redcr_bench::runtime::{self, Preset, Recorded};

/// Locates the repo root by walking up from the manifest dir (falling back
/// to the current directory) until a `.git` is found.
fn repo_root() -> PathBuf {
    let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut dir = start.clone();
    loop {
        if dir.join(".git").exists() {
            return dir;
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or(start);
        }
    }
}

fn main() {
    let mut preset = Preset::Full;
    let mut profile = false;
    for arg in std::env::args().skip(1) {
        if arg == "--profile" {
            profile = true;
        } else {
            preset = Preset::parse(&arg).unwrap_or_else(|| panic!("unknown argument {arg:?}"));
        }
    }

    let path = repo_root().join("BENCH_runtime.json");
    let existing = std::fs::read_to_string(&path).ok();
    let reset = std::env::var("REDCR_BENCH_RESET_BASELINE").is_ok_and(|v| v == "1");
    let stored = if reset { None } else { existing.as_deref().and_then(runtime::parse_baseline) };

    eprintln!("running runtime benchmark ({} preset)...", preset.name());
    let current = runtime::run_all(preset);

    // A stored baseline only compares against a run of the same preset;
    // otherwise (first run, reset, or preset switch) this run seeds it.
    let (note, baseline): (String, Recorded) = match stored {
        Some((p, note, set)) if p == preset.name() => (note, set),
        _ => (
            "pre-change baseline: flat Mutex<VecDeque> mailbox with notify_all broadcast"
                .to_string(),
            current.iter().map(|s| (s.name.to_string(), s.m)).collect(),
        ),
    };

    print!("{}", runtime::render_table(&current, &baseline));
    let doc = runtime::render_json(preset, &baseline, &note, &current);
    std::fs::write(&path, &doc).expect("write BENCH_runtime.json");
    println!("\nwrote {}", path.display());

    if profile {
        eprintln!("profiling headline scenario ({})...", runtime::HEADLINE_SCENARIO);
        let artifacts = runtime::profile_headline(preset);
        let base = format!("profile_{}", artifacts.scenario);
        let p = redcr_bench::output::write_result(&format!("{base}.json"), &artifacts.json);
        println!("wrote {}", p.display());
        let p = redcr_bench::output::write_result(&format!("{base}.folded"), &artifacts.folded);
        println!("wrote {}", p.display());
        let p = redcr_bench::output::write_result(
            &format!("{base}.perfetto.json"),
            &artifacts.perfetto,
        );
        println!("wrote {}", p.display());
        println!("profile: {}", artifacts.summary);
    }
}
