//! Wall-clock runtime benchmark: measures how fast the simulator itself
//! runs (not virtual time) and writes `BENCH_runtime.json` at the repo
//! root, preserving the committed pre-change baseline so every run reports
//! a speedup trajectory.
//!
//! ```text
//! cargo run --release -p redcr-bench --bin runtime            # full preset
//! cargo run --release -p redcr-bench --bin runtime -- smoke   # CI preset
//! ```
//!
//! Set `REDCR_BENCH_RESET_BASELINE=1` to overwrite the stored baseline
//! with this run's numbers (used exactly once, before a perf change, to
//! capture the "before" measurement).

use std::path::PathBuf;

use redcr_bench::runtime::{self, Preset, Recorded};

/// Locates the repo root by walking up from the manifest dir (falling back
/// to the current directory) until a `.git` is found.
fn repo_root() -> PathBuf {
    let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut dir = start.clone();
    loop {
        if dir.join(".git").exists() {
            return dir;
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or(start);
        }
    }
}

fn main() {
    let preset = std::env::args()
        .nth(1)
        .map(|s| Preset::parse(&s).unwrap_or_else(|| panic!("unknown preset {s:?}")))
        .unwrap_or(Preset::Full);

    let path = repo_root().join("BENCH_runtime.json");
    let existing = std::fs::read_to_string(&path).ok();
    let reset = std::env::var("REDCR_BENCH_RESET_BASELINE").is_ok_and(|v| v == "1");
    let stored = if reset { None } else { existing.as_deref().and_then(runtime::parse_baseline) };

    eprintln!("running runtime benchmark ({} preset)...", preset.name());
    let current = runtime::run_all(preset);

    // A stored baseline only compares against a run of the same preset;
    // otherwise (first run, reset, or preset switch) this run seeds it.
    let (note, baseline): (String, Recorded) = match stored {
        Some((p, note, set)) if p == preset.name() => (note, set),
        _ => (
            "pre-change baseline: flat Mutex<VecDeque> mailbox with notify_all broadcast"
                .to_string(),
            current.iter().map(|s| (s.name.to_string(), s.m)).collect(),
        ),
    };

    print!("{}", runtime::render_table(&current, &baseline));
    let doc = runtime::render_json(preset, &baseline, &note, &current);
    std::fs::write(&path, &doc).expect("write BENCH_runtime.json");
    println!("\nwrote {}", path.display());
}
