//! Runs the chaos-mode kill/heal sweep: each seeded race scenario twice,
//! gated on bit-determinism (report totals and trace FNV must repeat) and
//! on the race actually materializing. Exits 1 on any violation.
fn main() {
    let outcomes = redcr_bench::chaos::generate();
    print!("{}", redcr_bench::chaos::render(&outcomes));
    let mut failed = false;
    for o in &outcomes {
        if !o.deterministic {
            eprintln!("FAIL: {} did not repeat bit-for-bit", o.name);
            failed = true;
        }
        if !o.expectation_met {
            eprintln!("FAIL: {} did not produce its kill/heal race", o.name);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("all {} chaos scenarios deterministic and on script", outcomes.len());
}
