//! Regenerates Table 2 (168-hour job breakdown vs node count).
fn main() {
    let rows = redcr_bench::table2_3::generate_table2(32);
    let out = redcr_bench::table2_3::render_table2(&rows);
    println!("{out}");
    let path = redcr_bench::output::write_result("table2.txt", &out);
    eprintln!("wrote {}", path.display());
}
