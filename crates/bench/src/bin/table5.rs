//! Regenerates Table 5 / Figure 10 (failure-free overhead vs degree,
//! measured on the real replicated runtime).
fn main() {
    let t5 = redcr_bench::table5::generate();
    let out = redcr_bench::table5::render(&t5);
    println!("{out}");
    let path = redcr_bench::output::write_result("table5.txt", &out);
    eprintln!("wrote {}", path.display());
}
