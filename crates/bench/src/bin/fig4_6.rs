//! Regenerates Figures 4-6 (modeled time vs degree, three configurations).
fn main() {
    let mut all = String::new();
    for figure in [4u32, 5, 6] {
        let data = redcr_bench::fig4_6::generate(figure);
        let out = redcr_bench::fig4_6::render(&data);
        println!("{out}");
        all.push_str(&out);
        all.push('\n');
    }
    let path = redcr_bench::output::write_result("fig4_6.txt", &all);
    eprintln!("wrote {}", path.display());
}
