//! Regenerates every table and figure in one run (writes results/).
use redcr_model::combined::SimplifiedForm;

fn main() {
    let seeds = redcr_bench::calib::T4_SEEDS;
    eprintln!("[1/13] table 1");
    redcr_bench::output::write_result("table1.txt", &redcr_bench::table1::render());
    eprintln!("[2/13] table 2");
    let t2 = redcr_bench::table2_3::generate_table2(seeds);
    redcr_bench::output::write_result("table2.txt", &redcr_bench::table2_3::render_table2(&t2));
    eprintln!("[3/13] table 3");
    let t3 = redcr_bench::table2_3::generate_table3(seeds);
    redcr_bench::output::write_result("table3.txt", &redcr_bench::table2_3::render_table3(&t3));
    eprintln!("[4/13] table 5 / figure 10 (runtime measurement)");
    let t5 = redcr_bench::table5::generate();
    redcr_bench::output::write_result("table5.txt", &redcr_bench::table5::render(&t5));
    eprintln!("[5/13] table 4 / figures 8-9 (Monte-Carlo fault injection)");
    let t4 = redcr_bench::table4::generate(&t5, seeds);
    redcr_bench::output::write_result("table4.txt", &redcr_bench::table4::render(&t4));
    eprintln!("[6/13] figure 2");
    let curves = redcr_bench::fig2::generate(10_000, 128.0);
    redcr_bench::output::write_result("fig2.txt", &redcr_bench::fig2::render(&curves));
    eprintln!("[7/13] figures 4-6");
    let mut f46 = String::new();
    for figure in [4u32, 5, 6] {
        f46.push_str(&redcr_bench::fig4_6::render(&redcr_bench::fig4_6::generate(figure)));
        f46.push('\n');
    }
    redcr_bench::output::write_result("fig4_6.txt", &f46);
    eprintln!("[8/13] figure 11");
    let f11 = redcr_bench::fig11::generate(SimplifiedForm::Consistent);
    redcr_bench::output::write_result("fig11.txt", &redcr_bench::fig11::render(&f11));
    eprintln!("[9/13] figure 12");
    let f12 = redcr_bench::fig12::generate_from(&t4, &redcr_bench::paper::constants::MTBF_HOURS);
    redcr_bench::output::write_result("fig12.txt", &redcr_bench::fig12::render(&f12));
    eprintln!("[10/13] figures 13-14");
    let marks = redcr_bench::fig13_14::find_landmarks();
    let d13 = redcr_bench::fig13_14::generate(30_000, 20);
    redcr_bench::output::write_result(
        "fig13.txt",
        &redcr_bench::fig13_14::render(&d13, 13, &marks),
    );
    let d14 = redcr_bench::fig13_14::generate(200_000, 24);
    redcr_bench::output::write_result(
        "fig14.txt",
        &redcr_bench::fig13_14::render(&d14, 14, &marks),
    );
    eprintln!("[11/13] figure 9 surface data");
    let mut f9 = String::from("# degree mtbf_hours minutes\n");
    for (mtbf, cells) in &t4.rows {
        for c in cells {
            if let Some(m) = c.minutes {
                f9.push_str(&format!("{} {} {:.2}\n", c.degree, mtbf, m));
            }
        }
        f9.push('\n');
    }
    redcr_bench::output::write_result("fig9.dat", &f9);
    eprintln!("[12/13] partial-redundancy window study");
    let w_mtbf = redcr_bench::window::sweep_mtbf(2.0, 48.0, 47);
    let w_n = redcr_bench::window::sweep_processes(100, 2_000_000, 60);
    redcr_bench::output::write_result(
        "window.txt",
        &format!("{}\n{}", redcr_bench::window::render(&w_mtbf), redcr_bench::window::render(&w_n)),
    );
    eprintln!("[13/13] measured-vs-model validation");
    let runs = redcr_bench::validation::generate();
    redcr_bench::output::write_result("validation.txt", &redcr_bench::validation::render(&runs));
    redcr_bench::validation::write_sidecars(&runs);
    eprintln!("done; see {}", redcr_bench::output::results_dir().display());
}
