//! Figure 9 is the surface-plot rendering of Table 4; this binary emits the
//! matrix in a gnuplot-friendly grid format (degree, MTBF, minutes).
fn main() {
    let t5 = redcr_bench::table5::generate();
    let t4 = redcr_bench::table4::generate(&t5, redcr_bench::calib::T4_SEEDS);
    let mut out = String::from("# degree mtbf_hours minutes\n");
    for (mtbf, cells) in &t4.rows {
        for c in cells {
            if let Some(m) = c.minutes {
                out.push_str(&format!("{} {} {:.2}\n", c.degree, mtbf, m));
            }
        }
        out.push('\n'); // gnuplot surface row separator
    }
    println!("{out}");
    let path = redcr_bench::output::write_result("fig9.dat", &out);
    eprintln!("wrote {}", path.display());
}
