//! Regenerates Table 3 (100k-node job breakdowns).
fn main() {
    let rows = redcr_bench::table2_3::generate_table3(32);
    let out = redcr_bench::table2_3::render_table3(&rows);
    println!("{out}");
    let path = redcr_bench::output::write_result("table3.txt", &out);
    eprintln!("wrote {}", path.display());
}
