//! Regenerates Figure 13 (weak scaling to 30k processes).
fn main() {
    let data = redcr_bench::fig13_14::generate(30_000, 20);
    let marks = redcr_bench::fig13_14::find_landmarks();
    let out = redcr_bench::fig13_14::render(&data, 13, &marks);
    println!("{out}");
    let path = redcr_bench::output::write_result("fig13.txt", &out);
    eprintln!("wrote {}", path.display());
}
