//! Regenerates Figure 2 (system reliability vs redundancy degree).
fn main() {
    let curves = redcr_bench::fig2::generate(10_000, 128.0);
    let out = redcr_bench::fig2::render(&curves);
    println!("{out}");
    let mut csv = String::from("label,degree,reliability\n");
    for c in &curves {
        for (d, r) in &c.samples {
            csv.push_str(&format!("{},{d},{r}\n", c.label.trim()));
        }
    }
    redcr_bench::output::write_result("fig2.csv", &csv);
    let path = redcr_bench::output::write_result("fig2.txt", &out);
    eprintln!("wrote {}", path.display());
}
