//! The partial-redundancy window study (paper Section 6 observation (3) and
//! the conclusion's "short window" caveat).
fn main() {
    let by_mtbf = redcr_bench::window::sweep_mtbf(2.0, 48.0, 47);
    let out1 = redcr_bench::window::render(&by_mtbf);
    println!("{out1}");
    let by_n = redcr_bench::window::sweep_processes(100, 2_000_000, 60);
    let out2 = redcr_bench::window::render(&by_n);
    println!("{out2}");
    redcr_bench::output::write_result("window.txt", &format!("{out1}\n{out2}"));
}
