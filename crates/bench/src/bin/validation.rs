//! Runs the measured-vs-model validation scenarios, writes the
//! `*_validation.json` sidecars into `results/`, and fails (exit 1) if the
//! failure-free prediction misses the observed runtime by 20% or more.
fn main() {
    let runs = redcr_bench::validation::generate();
    print!("{}", redcr_bench::validation::render(&runs));
    for path in redcr_bench::validation::write_sidecars(&runs) {
        println!("wrote {}", path.display());
    }
    let free = runs.iter().find(|r| r.name == "cg").expect("failure-free scenario");
    let err = free.validation.relative_error;
    if err.is_nan() || err.abs() >= 0.2 {
        eprintln!("FAIL: failure-free relative error {err:+.3} exceeds the 20% bound");
        std::process::exit(1);
    }
    println!("failure-free relative error {:+.2}% — within the 20% bound", err * 100.0);
    let heal = runs.iter().find(|r| r.name == "cg_heal").expect("healing scenario");
    let herr = heal.validation.relative_error;
    if heal.validation.respawns == 0 {
        eprintln!("FAIL: healing scenario produced no respawns");
        std::process::exit(1);
    }
    if herr.is_nan() || herr.abs() >= 0.2 {
        eprintln!("FAIL: healing relative error {herr:+.3} exceeds the 20% bound");
        std::process::exit(1);
    }
    println!(
        "healing relative error {:+.2}% ({} respawns, repair-extended model) — within the 20% bound",
        herr * 100.0,
        heal.validation.respawns
    );
}
