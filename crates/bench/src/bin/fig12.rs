//! Regenerates Figure 12 (observed vs modeled overlay + fit summary).
fn main() {
    let fig = redcr_bench::fig12::generate(redcr_bench::calib::T4_SEEDS);
    let out = redcr_bench::fig12::render(&fig);
    println!("{out}");
    let path = redcr_bench::output::write_result("fig12.txt", &out);
    eprintln!("wrote {}", path.display());
}
