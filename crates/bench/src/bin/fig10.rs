//! Figure 10 is the plot of Table 5; this binary emits its CSV series.
fn main() {
    let t5 = redcr_bench::table5::generate();
    let mut csv = String::from("degree,observed_minutes,expected_minutes\n");
    for (i, d) in redcr_bench::paper::DEGREES.iter().enumerate() {
        csv.push_str(&format!(
            "{},{:.2},{:.2}\n",
            d, t5.observed_minutes[i], t5.expected_minutes[i]
        ));
    }
    println!("{csv}");
    let path = redcr_bench::output::write_result("fig10.csv", &csv);
    eprintln!("wrote {}", path.display());
}
