//! Capacity-planner sweep: reproduces the paper's Figures 9–14 grid as
//! one command through the `redcr-sweep` batch engine and result cache,
//! writing `results/sweep_fig9_14.json` (or `sweep_smoke.json`).
//!
//! ```text
//! cargo run --release -p redcr-bench --bin sweep                # full grid
//! cargo run --release -p redcr-bench --bin sweep -- smoke       # CI subgrid
//! cargo run --release -p redcr-bench --bin sweep -- smoke --require-warm
//! cargo run --release -p redcr-bench --bin sweep -- fig9_14 --cache /tmp/c.jsonl
//! ```
//!
//! The run is deterministic: invoked twice back-to-back, the second run
//! reports 100% cache hits and writes a byte-identical document.
//! `--require-warm` turns that property into an exit code (non-zero on
//! any cold miss) for the CI gate; `--cache PATH` overrides the per-preset
//! default `results/sweep_cache_<preset>.jsonl`.

use std::path::PathBuf;
use std::process::ExitCode;

use redcr_bench::sweepbench::{self, SweepPreset};

fn main() -> ExitCode {
    let mut preset = SweepPreset::Fig9_14;
    let mut cache_path: Option<PathBuf> = None;
    let mut require_warm = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require-warm" => require_warm = true,
            "--cache" => match args.next() {
                Some(p) => cache_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--cache requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => match SweepPreset::parse(other) {
                Some(p) => preset = p,
                None => {
                    eprintln!("unknown argument {other:?} (expected fig9_14|smoke, --cache PATH, --require-warm)");
                    return ExitCode::FAILURE;
                }
            },
        }
    }

    let cache_path = cache_path.unwrap_or_else(|| preset.default_cache_path());
    eprintln!(
        "running {} sweep (cache {}, {} threads)...",
        preset.name(),
        cache_path.display(),
        redcr_bench::worker_threads()
    );

    let (report, doc) = match sweepbench::run(preset, &cache_path, redcr_bench::worker_threads()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let front = redcr_sweep::frontier(&report.entries);
    println!("Global Pareto frontier (wallclock vs node-hours vs completion):");
    print!("{}", sweepbench::render_pareto_table(&report, &front));
    println!();
    let groups = redcr_sweep::grouped_frontiers(&report.entries);
    println!("Per-family redundancy frontiers (non-dominated r per backend/N/MTBF):");
    print!("{}", sweepbench::render_group_table(&report, &groups));
    println!();
    println!("{}", sweepbench::render_stats(&report));

    let path = redcr_bench::output::write_result(preset.output_name(), &doc);
    println!("wrote {}", path.display());

    if require_warm && !report.stats.all_warm() {
        eprintln!(
            "--require-warm: {} cold misses (expected a fully warm cache)",
            report.stats.cold_misses
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
