//! Regenerates Figure 11 (simplified model curves at the Table 4 params).
use redcr_model::combined::SimplifiedForm;
fn main() {
    let fig = redcr_bench::fig11::generate(SimplifiedForm::Consistent);
    let out = redcr_bench::fig11::render(&fig);
    println!("{out}");
    let path = redcr_bench::output::write_result("fig11.txt", &out);
    eprintln!("wrote {}", path.display());
}
