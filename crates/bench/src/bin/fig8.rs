//! Figure 8 is the line-graph rendering of Table 4; this binary emits the
//! same data as CSV series for plotting.
fn main() {
    let t5 = redcr_bench::table5::generate();
    let t4 = redcr_bench::table4::generate(&t5, redcr_bench::calib::T4_SEEDS);
    let mut csv = String::from("mtbf_hours,degree,minutes\n");
    for (mtbf, cells) in &t4.rows {
        for c in cells {
            csv.push_str(&format!(
                "{},{},{}\n",
                mtbf,
                c.degree,
                c.minutes.map(|m| format!("{m:.2}")).unwrap_or_default()
            ));
        }
    }
    println!("{csv}");
    let path = redcr_bench::output::write_result("fig8.csv", &csv);
    eprintln!("wrote {}", path.display());
}
