//! Regenerates Figure 14 (weak scaling to 200k processes + landmarks).
fn main() {
    let data = redcr_bench::fig13_14::generate(200_000, 24);
    let marks = redcr_bench::fig13_14::find_landmarks();
    let out = redcr_bench::fig13_14::render(&data, 14, &marks);
    println!("{out}");
    let path = redcr_bench::output::write_result("fig14.txt", &out);
    eprintln!("wrote {}", path.display());
}
