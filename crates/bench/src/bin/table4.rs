//! Regenerates Table 4 / Figures 8-9 (combined C/R + redundancy matrix).
fn main() {
    eprintln!("measuring failure-free overhead curve (Table 5 prerequisite)...");
    let t5 = redcr_bench::table5::generate();
    eprintln!(
        "running Monte-Carlo fault injection ({} seeds/cell)...",
        redcr_bench::calib::T4_SEEDS
    );
    let t4 = redcr_bench::table4::generate(&t5, redcr_bench::calib::T4_SEEDS);
    let out = redcr_bench::table4::render(&t4);
    println!("{out}");
    let path = redcr_bench::output::write_result("table4.txt", &out);
    eprintln!("wrote {}", path.display());
}
