//! Regenerates Table 1 (background reliability survey).
fn main() {
    let out = redcr_bench::table1::render();
    println!("{out}");
    let path = redcr_bench::output::write_result("table1.txt", &out);
    eprintln!("wrote {}", path.display());
}
