//! Figure 2 — effect of the redundancy degree on system reliability
//! (Eq. 9) for several node MTBFs and communication fractions.

use redcr_model::redundancy::{redundant_time, SystemModel};
use redcr_model::units;

use crate::output::TextTable;

/// One reliability curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Label of the configuration.
    pub label: String,
    /// Node MTBF, years.
    pub mtbf_years: f64,
    /// Communication fraction α.
    pub alpha: f64,
    /// `(degree, R_sys)` samples.
    pub samples: Vec<(f64, f64)>,
}

/// The degree grid of the figure.
pub fn degree_grid() -> Vec<f64> {
    (0..=40).map(|i| 1.0 + 0.05 * i as f64).collect()
}

/// Generates the figure's four curves: θ ∈ {2.5, 5} years at α = 0.2, plus
/// α ∈ {0.05, 0.5} at θ = 5 years. `n` virtual processes, base time `t`
/// hours.
pub fn generate(n: u64, t: f64) -> Vec<Curve> {
    let configs = [
        ("theta=2.5y alpha=0.2", 2.5, 0.2),
        ("theta=5y   alpha=0.2", 5.0, 0.2),
        ("theta=5y   alpha=0.05", 5.0, 0.05),
        ("theta=5y   alpha=0.5", 5.0, 0.5),
    ];
    configs
        .into_iter()
        .map(|(label, years, alpha)| {
            let theta = units::hours_from_years(years);
            let samples = degree_grid()
                .into_iter()
                .map(|r| {
                    let t_red = redundant_time(t, alpha, r).expect("valid Eq. 1");
                    let rel = SystemModel::new(n, r, theta)
                        .expect("valid system")
                        .system_reliability(t_red)
                        .expect("valid horizon");
                    (r, rel)
                })
                .collect();
            Curve { label: label.to_string(), mtbf_years: years, alpha, samples }
        })
        .collect()
}

/// Renders the curves at the quarter-step degrees.
pub fn render(curves: &[Curve]) -> String {
    let degrees: Vec<f64> = crate::paper::DEGREES.to_vec();
    let mut t = TextTable::new().header(
        std::iter::once("configuration".to_string()).chain(degrees.iter().map(|d| format!("{d}x"))),
    );
    for curve in curves {
        let mut row = vec![curve.label.clone()];
        for &d in &degrees {
            let rel = curve
                .samples
                .iter()
                .min_by(|a, b| (a.0 - d).abs().total_cmp(&(b.0 - d).abs()))
                .map(|(_, r)| *r)
                .unwrap_or(f64::NAN);
            row.push(format!("{rel:.4}"));
        }
        t.row(row);
    }
    format!(
        "Figure 2. Effect of redundancy on system reliability R_sys (Eq. 9)\n\
         (10,000 virtual processes, 128-hour job)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_rise_with_degree_and_order_by_mtbf() {
        let curves = generate(10_000, 128.0);
        assert_eq!(curves.len(), 4);
        for c in &curves {
            // Weakly monotone within each integral band; across the whole
            // sweep reliability at 3x must beat 1x decisively.
            let first = c.samples.first().unwrap().1;
            let last = c.samples.last().unwrap().1;
            assert!(last > first, "{}: {first} -> {last}", c.label);
            for (_, r) in &c.samples {
                assert!((0.0..=1.0).contains(r));
            }
        }
        // Lower MTBF -> lower reliability at the same degree (the paper's
        // "node reliability alone demands triple redundancy at θ=2.5").
        let at = |c: &Curve, d: f64| {
            c.samples.iter().min_by(|a, b| (a.0 - d).abs().total_cmp(&(b.0 - d).abs())).unwrap().1
        };
        assert!(at(&curves[0], 2.0) < at(&curves[1], 2.0));
        // Higher α -> longer t_Red -> lower reliability at the same degree.
        assert!(at(&curves[3], 2.0) <= at(&curves[2], 2.0));
    }
}
