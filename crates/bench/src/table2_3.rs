//! Tables 2 and 3 — the C/R efficiency breakdown (work / checkpoint /
//! recompute / restart) as node counts grow and jobs lengthen, without
//! redundancy.
//!
//! Reproduced with the Monte-Carlo cluster simulator at the calibrated
//! checkpoint/restart costs (`calib::T23_*`). Configurations whose overhead
//! exceeds capacity (the paper's "useful work becomes insignificant" row)
//! are reported as divergent.

use redcr_cluster::combined::simulate_combined;
use redcr_cluster::job::FailureExposure;
use redcr_cluster::sweep::monte_carlo;

use crate::calib::sandia_config;
use crate::output::TextTable;

/// One breakdown row.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Node count.
    pub nodes: u64,
    /// Job length, hours.
    pub job_hours: f64,
    /// Node MTBF, years.
    pub mtbf_years: f64,
    /// `(work, checkpoint, recompute, restart)` percentages, or `None` if
    /// the configuration diverged.
    pub breakdown: Option<(f64, f64, f64, f64)>,
}

fn simulate_row(nodes: u64, job_hours: f64, mtbf_years: f64, seeds: usize) -> BreakdownRow {
    let cfg = sandia_config(nodes, job_hours, mtbf_years);
    // Gate on the closed form first: a configuration the model calls
    // divergent (λ·t_RR ≥ 1) would grind the Monte Carlo through millions
    // of hopeless attempts.
    if cfg.evaluate().is_err() {
        return BreakdownRow { nodes, job_hours, mtbf_years, breakdown: None };
    }
    let agg = monte_carlo(seeds, crate::worker_threads(), |seed| {
        simulate_combined(&cfg, FailureExposure::AllTime, seed)
    });
    let breakdown = match agg {
        Ok(agg) if agg.completed > 0 => {
            let (w, c, r, rs) = agg.mean.breakdown();
            Some((w * 100.0, c * 100.0, r * 100.0, rs * 100.0))
        }
        _ => None,
    };
    BreakdownRow { nodes, job_hours, mtbf_years, breakdown }
}

/// Generates Table 2: a 168-hour job at 5-year node MTBF for growing node
/// counts.
pub fn generate_table2(seeds: usize) -> Vec<BreakdownRow> {
    [100u64, 1_000, 10_000, 100_000]
        .into_iter()
        .map(|nodes| simulate_row(nodes, 168.0, 5.0, seeds))
        .collect()
}

/// Generates Table 3: 100k-node jobs of varying length and MTBF.
pub fn generate_table3(seeds: usize) -> Vec<BreakdownRow> {
    [(168.0, 5.0), (700.0, 5.0), (5_000.0, 1.0)]
        .into_iter()
        .map(|(hours, years)| simulate_row(100_000, hours, years, seeds))
        .collect()
}

fn render_rows(rows: &[BreakdownRow], label_nodes: bool) -> String {
    let mut t = if label_nodes {
        TextTable::new().header(["# Nodes", "work", "checkpt", "recomp.", "restart"])
    } else {
        TextTable::new().header(["job work", "MTBF", "work", "checkpt", "recomp.", "restart"])
    };
    for row in rows {
        let cells: Vec<String> = match row.breakdown {
            Some((w, c, r, rs)) => vec![
                format!("{w:.0}%"),
                format!("{c:.0}%"),
                format!("{r:.0}%"),
                format!("{rs:.0}%"),
            ],
            None => vec!["→0%".into(), "-".into(), "-".into(), "-".into()],
        };
        if label_nodes {
            let mut all = vec![row.nodes.to_string()];
            all.extend(cells);
            t.row(all);
        } else {
            let mut all =
                vec![format!("{:.0} hrs", row.job_hours), format!("{:.0} yrs", row.mtbf_years)];
            all.extend(cells);
            t.row(all);
        }
    }
    t.render()
}

/// Renders Table 2 with the paper's reference values alongside.
pub fn render_table2(rows: &[BreakdownRow]) -> String {
    let mut out =
        String::from("Table 2. 168-hour job, 5-year node MTBF (Monte-Carlo, no redundancy)\n\n");
    out.push_str(&render_rows(rows, true));
    out.push_str("\npaper reference: 96/1/3/0, 92/7/1/0, 75/15/6/4, 35/20/10/35\n");
    out
}

/// Renders Table 3 with the paper's reference values alongside.
pub fn render_table3(rows: &[BreakdownRow]) -> String {
    let mut out = String::from("Table 3. 100k-node job, varied work and MTBF\n\n");
    out.push_str(&render_rows(rows, false));
    out.push_str(
        "\npaper reference: 35/20/10/35, 38/18/9/43, 5/5/5/85 (the last row is\n\
         restart-dominated; at our calibrated costs it diverges outright,\n\
         which is the same conclusion in the limit)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_decays_with_node_count() {
        let rows = generate_table2(6);
        let works: Vec<f64> =
            rows.iter().map(|r| r.breakdown.map(|(w, _, _, _)| w).unwrap_or(0.0)).collect();
        // Work fraction must decay monotonically with scale (Table 2's
        // headline shape).
        for pair in works.windows(2) {
            assert!(pair[1] <= pair[0] + 2.0, "work% should fall with scale: {works:?}");
        }
        // Small cluster is nearly all work; huge cluster is not.
        assert!(works[0] > 90.0, "{works:?}");
        assert!(works[3] < 60.0, "{works:?}");
    }

    #[test]
    fn render_includes_reference() {
        let s = render_table2(&generate_table2(2));
        assert!(s.contains("paper reference"));
    }
}
