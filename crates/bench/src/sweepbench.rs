//! The capacity-planner sweep: one command reproducing the paper's
//! Figures 9–14 grid through `redcr-sweep`.
//!
//! Two scenario families make up the grid:
//!
//! * the **Section 6 experiment surface** (Figures 9, 11–12 / Table 4):
//!   the CG workload at 128 processes, MTBF ∈ {6, 12, 18, 24, 30} h,
//!   degrees 1x–3x in quarter steps — evaluated by *both* the closed-form
//!   model and the Monte-Carlo cluster simulator;
//! * the **weak-scaling curves** (Figures 13–14): the calibrated 128-hour
//!   job at 5-year node MTBF, degrees {1, 1.5, 2, 2.5, 3}, process counts
//!   log-spaced to 30k and 200k — model backend. The two figures share
//!   their low-N rows, so the submitted batch deliberately contains
//!   duplicates for the dedup front-end to collapse.
//!
//! Alongside the raw grid the output document records the optimizer's
//! landmark points (1x/2x and 1x/3x crossovers, the two-jobs-for-one
//! throughput break-even, the per-MTBF optimal degree) and the Pareto
//! frontiers over (wallclock, node-hours, completion rate) — the global
//! frontier plus one per knob family (scenarios differing only in the
//! redundancy degree), which is the planner's actual tuning question.
//!
//! Everything here is deterministic: a repeated invocation against a warm
//! cache reports 100% hits and writes byte-identical JSON.

use std::fmt::Write as _;
use std::path::PathBuf;

use redcr_model::optimizer::{crossover, optimal_redundancy, throughput_break_even, RGrid};
use redcr_sweep::cache::ResultCache;
use redcr_sweep::engine::{run_sweep, SweepError, SweepReport};
use redcr_sweep::pareto::{self, GroupFrontier, ParetoPoint};
use redcr_sweep::spec::{Backend, ScenarioSpec, SpecPolicy, Workload};

use crate::calib::{self, F13_ALPHA, F13_CHECKPOINT_MINS, F13_RESTART_MINS, T4_SEEDS};
use crate::fig13_14::{process_grid, CURVE_DEGREES};
use crate::output::TextTable;
use crate::paper::constants;

/// Sweep sizing preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPreset {
    /// The full Figures 9–14 grid.
    Fig9_14,
    /// A CI-sized subgrid exercising both backends and the dedup path.
    Smoke,
}

impl SweepPreset {
    /// Parses `"fig9_14"`/`"smoke"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "fig9_14" => Some(SweepPreset::Fig9_14),
            "smoke" => Some(SweepPreset::Smoke),
            _ => None,
        }
    }

    /// Stable preset name (used in the JSON document).
    pub fn name(self) -> &'static str {
        match self {
            SweepPreset::Fig9_14 => "fig9_14",
            SweepPreset::Smoke => "smoke",
        }
    }

    /// Output file name under `results/`.
    pub fn output_name(self) -> &'static str {
        match self {
            SweepPreset::Fig9_14 => "sweep_fig9_14.json",
            SweepPreset::Smoke => "sweep_smoke.json",
        }
    }

    /// Default persistent cache path under `results/` (per preset, so a
    /// smoke run never warms or dirties the committed full-grid cache).
    pub fn default_cache_path(self) -> PathBuf {
        crate::output::results_dir().join(match self {
            SweepPreset::Fig9_14 => "sweep_cache_fig9_14.jsonl",
            SweepPreset::Smoke => "sweep_cache_smoke.jsonl",
        })
    }
}

/// The Section 6 CG workload as a sweep [`Workload`].
pub fn experiment_workload() -> Workload {
    Workload {
        base_time_hours: constants::BASE_TIME_MINS / 60.0,
        alpha: constants::ALPHA,
        checkpoint_cost_hours: constants::CHECKPOINT_SECS / 3600.0,
        restart_cost_hours: constants::RESTART_SECS / 3600.0,
    }
}

/// The Figures 13–14 weak-scaling workload as a sweep [`Workload`].
pub fn scaling_workload() -> Workload {
    Workload {
        base_time_hours: 128.0,
        alpha: F13_ALPHA,
        checkpoint_cost_hours: F13_CHECKPOINT_MINS / 60.0,
        restart_cost_hours: F13_RESTART_MINS / 60.0,
    }
}

/// Per-node MTBF of the weak-scaling figures (5 years, hours).
pub const SCALING_MTBF_HOURS: f64 = 5.0 * 365.0 * 24.0;

/// Per-preset grid sizing: experiment-surface MTBFs and degrees, seeds
/// per simulator point, and the two weak-scaling sub-grids as
/// `(max_n, points)`.
struct GridParams {
    mtbf_grid: &'static [f64],
    degree_grid: Vec<f64>,
    seeds: u32,
    scaling: [(u64, usize); 2],
}

/// Builds the submitted scenario batch of `preset` (duplicates included —
/// dedup is the engine's job).
pub fn grid(preset: SweepPreset) -> Vec<ScenarioSpec> {
    let GridParams { mtbf_grid, degree_grid, seeds, scaling } = match preset {
        SweepPreset::Fig9_14 => GridParams {
            mtbf_grid: &constants::MTBF_HOURS,
            degree_grid: RGrid::quarter_steps().degrees().to_vec(),
            seeds: T4_SEEDS as u32,
            scaling: [(30_000, 20), (200_000, 24)],
        },
        SweepPreset::Smoke => GridParams {
            mtbf_grid: &[6.0, 12.0],
            degree_grid: vec![1.0, 2.0, 3.0],
            seeds: 8,
            scaling: [(4_000, 4), (10_000, 5)],
        },
    };

    let mut specs = Vec::new();
    // Experiment surface: both backends over MTBF × degree.
    let workload = experiment_workload();
    for &mtbf in mtbf_grid {
        for &degree in &degree_grid {
            for backend in [Backend::Model, Backend::Simulator] {
                specs.push(ScenarioSpec {
                    backend,
                    n_virtual: constants::N_PROCESSES,
                    degree,
                    policy: SpecPolicy::Daly,
                    node_mtbf_hours: mtbf,
                    workload,
                    seeds,
                });
            }
        }
    }
    // Weak-scaling curves: model backend over N × degree, one sub-batch
    // per figure. The figures overlap at the low end (both grids start at
    // N = 100), so the submitted batch carries genuine duplicates.
    let workload = scaling_workload();
    for (max_n, points) in scaling {
        for n in process_grid(max_n, points) {
            for &degree in &CURVE_DEGREES {
                specs.push(ScenarioSpec {
                    backend: Backend::Model,
                    n_virtual: n,
                    degree,
                    policy: SpecPolicy::Daly,
                    node_mtbf_hours: SCALING_MTBF_HOURS,
                    workload,
                    seeds: 0,
                });
            }
        }
    }
    specs
}

/// The optimizer landmarks recorded alongside the grid: scaling
/// crossovers/break-even plus the model's optimal degree at each
/// experiment MTBF.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepLandmarks {
    /// First N where 2x completes no later than 1x.
    pub cross_1x_2x: Option<u64>,
    /// First N where 3x completes no later than 1x.
    pub cross_1x_3x: Option<u64>,
    /// First N where one 1x job takes at least twice a 2x job.
    pub throughput_2x: Option<u64>,
    /// First N where 3x beats 2x.
    pub triple_best_beyond: Option<u64>,
    /// `(mtbf_hours, optimal degree)` over the experiment grid.
    pub optimal_degree_by_mtbf: Vec<(f64, f64)>,
}

/// Computes the landmarks for `preset`'s MTBF grid.
pub fn landmarks(preset: SweepPreset) -> SweepLandmarks {
    let cfg = calib::scaling_config();
    let mtbf_grid: &[f64] = match preset {
        SweepPreset::Fig9_14 => &constants::MTBF_HOURS,
        SweepPreset::Smoke => &[6.0, 12.0],
    };
    let optimal_degree_by_mtbf = mtbf_grid
        .iter()
        .map(|&mtbf| {
            let degree =
                optimal_redundancy(&calib::experiment_config(mtbf), &RGrid::quarter_steps())
                    .map(|b| b.degree)
                    .unwrap_or(f64::NAN);
            (mtbf, degree)
        })
        .collect();
    SweepLandmarks {
        cross_1x_2x: crossover(&cfg, 1.0, 2.0, 100, 10_000_000).ok(),
        cross_1x_3x: crossover(&cfg, 1.0, 3.0, 100, 10_000_000).ok(),
        throughput_2x: throughput_break_even(&cfg, 2.0, 2.0, 100, 2_000_000).ok(),
        triple_best_beyond: crossover(&cfg, 2.0, 3.0, 100, 10_000_000).ok(),
        optimal_degree_by_mtbf,
    }
}

fn opt_u64(v: Option<u64>) -> String {
    v.map(|n| n.to_string()).unwrap_or_else(|| "null".into())
}

/// Renders the full output document (canonical key order, one scenario
/// per line). Cache hit/miss accounting is deliberately *not* part of the
/// document: warm and cold runs must produce byte-identical files.
pub fn render_doc(
    preset: SweepPreset,
    report: &SweepReport,
    front: &[ParetoPoint],
    groups: &[GroupFrontier],
    marks: &SweepLandmarks,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"redcr-sweep-grid/1\",");
    let _ = writeln!(out, "  \"preset\": \"{}\",", preset.name());
    let _ = writeln!(out, "  \"landmarks\": {{");
    let _ = writeln!(out, "    \"cross_1x_2x\": {},", opt_u64(marks.cross_1x_2x));
    let _ = writeln!(out, "    \"cross_1x_3x\": {},", opt_u64(marks.cross_1x_3x));
    let _ = writeln!(out, "    \"throughput_2x\": {},", opt_u64(marks.throughput_2x));
    let _ = writeln!(out, "    \"triple_best_beyond\": {},", opt_u64(marks.triple_best_beyond));
    out.push_str("    \"optimal_degree_by_mtbf\": [");
    for (i, (mtbf, degree)) in marks.optimal_degree_by_mtbf.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{mtbf},{degree}]");
    }
    out.push_str("]\n  },\n");
    let _ = writeln!(out, "  \"scenarios\": [");
    for (i, e) in report.entries.iter().enumerate() {
        let comma = if i + 1 == report.entries.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"hash\":\"{:016x}\",\"multiplicity\":{},\"spec\":{},\"result\":{}}}{comma}",
            e.hash,
            e.multiplicity,
            e.spec.render_json(),
            e.result.render_json()
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"pareto\": {},", pareto::render_json(front));
    let _ = writeln!(out, "  \"pareto_groups\": {}", pareto::render_groups_json(groups));
    out.push_str("}\n");
    out
}

/// Renders the human-readable Pareto-frontier table.
pub fn render_pareto_table(report: &SweepReport, front: &[ParetoPoint]) -> String {
    let mut t =
        TextTable::new().header(["backend", "N", "r", "mtbf h", "T h", "node-h", "completion"]);
    for p in front {
        let e = &report.entries[p.entry_index];
        t.row([
            e.spec.backend.name().to_string(),
            e.spec.n_virtual.to_string(),
            format!("{}", e.spec.degree),
            format!("{}", e.spec.node_mtbf_hours),
            format!("{:.2}", p.total_time_hours),
            format!("{:.0}", p.node_hours),
            format!("{:.3}", p.completion_rate),
        ]);
    }
    t.render()
}

/// Renders the per-knob-family frontiers compactly: one row per family
/// (backend, scale, MTBF), listing the non-dominated redundancy degrees
/// and the family's best wallclock.
pub fn render_group_table(report: &SweepReport, groups: &[GroupFrontier]) -> String {
    let mut t = TextTable::new().header(["backend", "N", "mtbf h", "frontier r", "best T h"]);
    for g in groups {
        let lead = &report.entries[g.first_entry_index].spec;
        let degrees: Vec<String> = g
            .points
            .iter()
            .map(|p| format!("{}", report.entries[p.entry_index].spec.degree))
            .collect();
        let best_t = g
            .points
            .first()
            .map(|p| format!("{:.2}", p.total_time_hours))
            .unwrap_or_else(|| "-".into());
        t.row([
            lead.backend.name().to_string(),
            lead.n_virtual.to_string(),
            format!("{}", lead.node_mtbf_hours),
            degrees.join(" "),
            best_t,
        ]);
    }
    t.render()
}

/// Renders the one-line cache accounting summary.
pub fn render_stats(report: &SweepReport) -> String {
    let s = &report.stats;
    format!(
        "cache: {} hits, {} misses ({} submitted, {} unique, {} duplicates collapsed)",
        s.cache_hits,
        s.cold_misses,
        s.submitted,
        s.unique,
        s.submitted - s.unique
    )
}

/// Runs the preset's grid against the cache at `cache_path` and returns
/// the report plus the rendered output document.
///
/// # Errors
///
/// Propagates engine and cache errors.
pub fn run(
    preset: SweepPreset,
    cache_path: &std::path::Path,
    threads: usize,
) -> Result<(SweepReport, String), SweepError> {
    let mut cache = ResultCache::open(cache_path)?;
    let report = run_sweep(&grid(preset), threads, &mut cache)?;
    let front = pareto::frontier(&report.entries);
    let groups = pareto::grouped_frontiers(&report.entries);
    let marks = landmarks(preset);
    let doc = render_doc(preset, &report, &front, &groups, &marks);
    Ok((report, doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_contains_duplicates_for_dedup() {
        let specs = grid(SweepPreset::Smoke);
        let d = redcr_sweep::dedup(&specs);
        assert!(d.duplicates() > 0, "figure sub-grids must overlap at low N");
        assert!(d.unique.len() > 20);
    }

    #[test]
    fn full_grid_shape() {
        let specs = grid(SweepPreset::Fig9_14);
        // 5 MTBFs × 9 degrees × 2 backends + (20 + 24) N-points × 5 degrees.
        assert_eq!(specs.len(), 5 * 9 * 2 + (20 + 24) * 5);
        let d = redcr_sweep::dedup(&specs);
        assert!(d.duplicates() >= 5, "fig13/fig14 share at least N=100 rows");
    }

    #[test]
    fn preset_parses() {
        assert_eq!(SweepPreset::parse("FIG9_14"), Some(SweepPreset::Fig9_14));
        assert_eq!(SweepPreset::parse("smoke"), Some(SweepPreset::Smoke));
        assert_eq!(SweepPreset::parse("x"), None);
    }
}
