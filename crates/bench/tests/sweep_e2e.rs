//! End-to-end acceptance tests for the capacity-planner sweep: cold →
//! warm determinism (100% cache hits, byte-identical document), dedup
//! collapse, and Pareto-frontier validity on the real grid.

use redcr_bench::sweepbench::{self, SweepPreset};
use redcr_sweep::pareto;

fn temp_cache(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("redcr_sweep_e2e_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join("cache.jsonl")
}

#[test]
fn smoke_grid_cold_then_warm_is_all_hits_and_byte_identical() {
    let cache = temp_cache("warm");
    let threads = redcr_bench::worker_threads();

    let (cold_report, cold_doc) =
        sweepbench::run(SweepPreset::Smoke, &cache, threads).expect("cold run");
    assert_eq!(cold_report.stats.cache_hits, 0, "fresh cache must be all misses");
    assert!(cold_report.stats.cold_misses > 0);

    let (warm_report, warm_doc) =
        sweepbench::run(SweepPreset::Smoke, &cache, threads).expect("warm run");
    assert_eq!(
        warm_report.stats.cold_misses, 0,
        "second run must be a 100% cache hit: {:?}",
        warm_report.stats
    );
    assert_eq!(warm_report.stats.cache_hits, warm_report.stats.unique);
    assert!(warm_report.entries.iter().all(|e| e.cache_hit));
    assert_eq!(cold_doc, warm_doc, "warm rerun must render byte-identical output");

    let _ = std::fs::remove_dir_all(cache.parent().unwrap());
}

#[test]
fn smoke_grid_collapses_duplicate_submissions() {
    let cache = temp_cache("dedup");
    let (report, _) = sweepbench::run(SweepPreset::Smoke, &cache, 4).expect("run");
    assert!(
        report.stats.submitted > report.stats.unique,
        "the figure sub-grids overlap, so dedup must collapse: {:?}",
        report.stats
    );
    let collapsed: usize = report.entries.iter().map(|e| e.multiplicity).sum();
    assert_eq!(collapsed, report.stats.submitted, "multiplicities account for every point");
    let _ = std::fs::remove_dir_all(cache.parent().unwrap());
}

#[test]
fn pareto_frontier_is_valid_and_nontrivial() {
    let cache = temp_cache("pareto");
    let (report, doc) = sweepbench::run(SweepPreset::Smoke, &cache, 4).expect("run");
    let front = pareto::frontier(&report.entries);
    assert!(!front.is_empty(), "a completed grid has a frontier");

    let coords = |i: usize| {
        let r = &report.entries[i].result;
        (r.total_time_hours, r.node_hours, r.completion_rate)
    };
    let dominates = |a: usize, b: usize| {
        let ((Some(ta), Some(na), ca), (Some(tb), Some(nb), cb)) = (coords(a), coords(b)) else {
            return false;
        };
        ta <= tb && na <= nb && ca >= cb && (ta < tb || na < nb || ca > cb)
    };

    // No frontier point is dominated by any entry.
    for p in &front {
        for i in 0..report.entries.len() {
            assert!(
                !dominates(i, p.entry_index),
                "frontier point {} dominated by entry {i}",
                p.entry_index
            );
        }
    }
    // Every completed off-frontier entry is dominated by someone.
    let on_front: Vec<usize> = front.iter().map(|p| p.entry_index).collect();
    for i in 0..report.entries.len() {
        if report.entries[i].result.total_time_hours.is_none() || on_front.contains(&i) {
            continue;
        }
        assert!(
            (0..report.entries.len()).any(|j| dominates(j, i)),
            "off-frontier entry {i} is undominated"
        );
    }
    // The frontier is in the document.
    assert!(doc.contains("\"pareto\": ["));

    // Per-family frontiers: every (backend, N, MTBF, workload) family that
    // completed keeps at least one non-dominated degree, so grouping never
    // collapses heterogeneous workloads into a two-point global frontier.
    let groups = pareto::grouped_frontiers(&report.entries);
    assert!(groups.len() > 1, "smoke grid spans multiple knob families");
    for g in &groups {
        let completed = report
            .entries
            .iter()
            .filter(|e| e.spec.group_hash() == g.group)
            .any(|e| e.result.total_time_hours.is_some());
        assert_eq!(!g.points.is_empty(), completed, "group {:016x}", g.group);
        for p in &g.points {
            assert_eq!(report.entries[p.entry_index].spec.group_hash(), g.group);
        }
    }
    assert!(doc.contains("\"pareto_groups\": ["));
    let _ = std::fs::remove_dir_all(cache.parent().unwrap());
}

#[test]
fn document_shape_is_stable() {
    let cache = temp_cache("shape");
    let (report, doc) = sweepbench::run(SweepPreset::Smoke, &cache, 4).expect("run");
    assert!(doc.starts_with("{\n  \"schema\": \"redcr-sweep-grid/1\",\n"));
    assert!(doc.contains("\"preset\": \"smoke\""));
    assert!(doc.contains("\"landmarks\": {"));
    assert!(doc.contains("\"cross_1x_2x\": "));
    // One scenario line per unique entry.
    let lines = doc.lines().filter(|l| l.trim_start().starts_with("{\"hash\":\"")).count();
    assert_eq!(lines, report.entries.len());
    // Simulator and model entries both present.
    assert!(doc.contains("\"backend\":\"simulator\""));
    assert!(doc.contains("\"backend\":\"model\""));
    let _ = std::fs::remove_dir_all(cache.parent().unwrap());
}
