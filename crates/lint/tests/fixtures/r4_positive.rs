// R4 positive fixture: abort-the-rank escape hatches on the hot path.
pub fn deliver(slot: Option<u64>, buf: &[u8]) -> u64 {
    if buf.is_empty() {
        panic!("empty buffer");
    }
    let head = slot.unwrap();
    let tail = buf.last().copied().expect("non-empty checked above");
    head + u64::from(tail)
}
