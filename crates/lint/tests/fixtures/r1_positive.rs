// R1 positive fixture: wall-clock reads in a virtual-time domain.
use std::time::Instant;

pub fn measure() -> f64 {
    let start = Instant::now();
    let _boot = std::time::SystemTime::now();
    start.elapsed().as_secs_f64()
}
