//! R9 positive fixture: a coroutine root whose deepest chain carries a
//! by-value buffer far over the default 128 KiB budget, plus a recursion
//! cycle (reported once as an advisory, not looped over).

pub fn spawn(pool: &Pool) {
    pool.run_batch(|| {
        huge_frame();
    });
}

fn huge_frame() {
    let buf: [u8; 200_000] = [0u8; 200_000];
    consume(&buf);
}

fn consume(_data: &[u8]) {}

fn descend(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    descend(n - 1)
}
