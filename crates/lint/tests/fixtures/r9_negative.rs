//! R9 negative fixture: a coroutine root with shallow frames stays well
//! under the stack budget and produces a finite per-root bound.

pub fn spawn(pool: &Pool) {
    pool.run_batch(|| {
        step();
    });
}

fn step() {
    let scratch: [u8; 1024] = [0u8; 1024];
    consume(&scratch);
}

fn consume(_data: &[u8]) {}
