// R6 negative fixture: sequentially consistent atomics draw no advisory.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::SeqCst)
}
