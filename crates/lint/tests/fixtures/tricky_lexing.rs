// Tricky-lexing fixture: every banned pattern below lives inside string
// literals, raw strings, byte strings, char context, or (nested) comments
// — none may fire. The single REAL violation at the bottom proves the
// lexer resynchronized correctly after all of it.

/* Outer comment.
   /* Nested comment mentioning Instant::now() and HashMap::new(). */
   Still the outer comment: x.unwrap() and panic!("boom").
*/

pub fn decoys() -> usize {
    let plain = "std::time::Instant::now() and thread_rng() in a string";
    let escaped = "say \"HashMap\" with .unwrap() escaped \\";
    let raw = r#"raw: SystemTime::now(); panic!("x"); Ordering::Relaxed"#;
    let hashed = r##"r# inside: rand::random() and .expect("no") "# still raw"##;
    let bytes = b"byte string: HashSet::new() .unwrap()";
    let byte_char = b'"';
    let quote_char = '"';
    let lifetime: &'static str = "lifetime tick is not a char literal";
    // Line comment decoy: let t = Instant::now(); HashMap::default();
    let instant_like = plain.len(); // identifier merely *containing* names
    plain.len()
        + escaped.len()
        + raw.len()
        + hashed.len()
        + bytes.len()
        + usize::from(byte_char == quote_char as u8)
        + lifetime.len()
        + instant_like
}

pub fn real_violation(v: Option<u64>) -> u64 {
    v.unwrap()
}
