// R4 negative fixture: fallible handling, and unwraps confined to tests.
pub fn deliver(slot: Option<u64>, buf: &[u8]) -> Option<u64> {
    let head = slot.unwrap_or(0);
    let tail = buf.last().copied().unwrap_or_else(|| 0);
    head.checked_add(u64::from(tail))
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u64> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: Result<u64, ()> = Ok(2);
        assert_eq!(r.expect("ok"), 2);
    }
}
