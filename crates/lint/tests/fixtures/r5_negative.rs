// R5 negative fixture: every path honors the same alpha-before-beta
// acquisition order, so the lock graph has edges but no cycle.
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn sum(&self) -> u64 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn diff(&self) -> u64 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a - *b
    }
}
