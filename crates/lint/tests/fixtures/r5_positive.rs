// R5 positive fixture: two paths acquire the same two locks in opposite
// orders — a textbook ABBA deadlock.
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn backward(&self) -> u64 {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        *a - *b
    }
}
