//! R8 negative fixture: the same blocking call is fine outside the
//! coroutine-reachable region, and a park-based wait inside it is the
//! cooperative way to block.

fn park_current() {}

fn tooling_dump(data: &[u8]) {
    let _ = std::fs::write("dump.bin", data);
}

pub fn spawn(pool: &Pool) {
    pool.run_batch(|| {
        park_current();
    });
}

pub fn offline_report(data: &[u8]) {
    tooling_dump(data);
}
