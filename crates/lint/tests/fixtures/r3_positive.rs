// R3 positive fixture: unseeded entropy sources.
use std::collections::hash_map::RandomState;

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let extra: u64 = rand::random();
    let _state = RandomState::new();
    let _ = &mut rng;
    extra
}
