// R2 positive fixture: RandomState-iteration-order containers.
use std::collections::HashMap;
use std::collections::HashSet as Seen;

pub fn tally(keys: &[u64]) -> usize {
    let mut counts: HashMap<u64, u32> = HashMap::new();
    let mut seen = Seen::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
        seen.insert(k);
    }
    seen.len()
}
