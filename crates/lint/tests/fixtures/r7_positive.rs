//! R7 positive fixture: a park-capable call and an unknown callee, both
//! while a tracked lock guard is live. Self-contained: stubs its own
//! `park_current` (the analyzer seeds park capability by name).

fn park_current() {}

struct Mail;

impl Mail {
    fn recv(&self) {
        park_current();
    }
}

pub struct Node {
    state: Mutex<u32>,
}

impl Node {
    pub fn deadlock_prone(&self, mail: &Mail) {
        let g = self.state.lock();
        mail.recv();
        drop(g);
    }

    pub fn probe_under_guard(&self, probe: impl Fn() -> bool) {
        let g = self.state.lock();
        if probe() {
            return;
        }
        drop(g);
    }
}
