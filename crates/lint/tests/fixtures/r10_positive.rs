//! R10 positive fixture: `loop` and `while` in coroutine-reachable code
//! with no yield, park, or recv on any body path.

pub fn spawn(pool: &Pool) {
    pool.run_batch(|| {
        busy_wait();
    });
}

fn busy_wait() {
    let mut n = 0u64;
    loop {
        n += 1;
        if n > 1_000_000 {
            break;
        }
    }
    while n > 0 {
        n -= 1;
    }
}
