//! R8 positive fixture: OS-blocking calls transitively reachable from a
//! coroutine root (the closure handed to `run_batch`).

fn checkpoint_to_disk(data: &[u8]) {
    let _ = std::fs::write("ckpt.bin", data);
}

pub fn spawn(pool: &Pool) {
    pool.run_batch(|| {
        checkpoint_to_disk(&[0u8; 8]);
        std::thread::yield_now();
    });
}
