// R2 negative fixture: ordered containers and textual mentions only.
use std::collections::{BTreeMap, BTreeSet};

pub fn tally(keys: &[u64]) -> usize {
    let note = "a HashMap would be nondeterministic here";
    let _ = note;
    let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
    let mut seen = BTreeSet::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
        seen.insert(k);
    }
    seen.len()
}
