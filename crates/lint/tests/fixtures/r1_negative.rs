// R1 negative fixture: wall-clock *mentions* that must not fire.

/// Doc text naming Instant::now() and std::time::SystemTime is fine.
pub fn virtual_now(clock: f64) -> f64 {
    let msg = "never call std::time::Instant::now() here";
    let raw = r#"SystemTime::now() inside a raw string"#;
    let _ = (msg, raw);
    clock + 1.0
}
