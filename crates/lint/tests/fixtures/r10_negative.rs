//! R10 negative fixture: a `while` that reaches a park on every
//! iteration is cooperative, and `for` loops are bounded by their
//! iterator and exempt even without one.

fn park_current() {}

fn recv() {
    park_current();
}

fn encode(_chunk: u64) {}

pub fn spawn(pool: &Pool) {
    pool.run_batch(|| {
        let mut pending = 3u32;
        while pending > 0 {
            recv();
            pending -= 1;
        }
        for chunk in 0..8 {
            encode(chunk);
        }
    });
}
