//! R7 negative fixture: the same park-capable call is fine once the
//! guard is released — by `drop(g)` or by leaving the guard's scope.

fn park_current() {}

struct Mail;

impl Mail {
    fn recv(&self) {
        park_current();
    }
}

pub struct Node {
    state: Mutex<u32>,
}

impl Node {
    pub fn drops_before_parking(&self, mail: &Mail) {
        let g = self.state.lock();
        let _snapshot = *g;
        drop(g);
        mail.recv();
    }

    pub fn scoped_guard(&self, mail: &Mail) {
        {
            let g = self.state.lock();
            let _snapshot = *g;
        }
        mail.recv();
    }
}
