// Suppression fixture: one well-formed trailing allow, one well-formed
// preceding-line allow, one malformed allow (no reason — suppresses
// nothing), and one stale allow on a clean line.

pub fn suppressed_trailing(v: Option<u64>) -> u64 {
    v.unwrap() // detlint::allow(R4, reason = "fixture: invariant documented elsewhere")
}

pub fn suppressed_preceding(v: Option<u64>) -> u64 {
    // detlint::allow(R4, reason = "fixture: covers the next line")
    v.unwrap()
}

pub fn malformed_allow(v: Option<u64>) -> u64 {
    v.unwrap() // detlint::allow(R4)
}

pub fn stale_allow(v: u64) -> u64 {
    // detlint::allow(R4, reason = "fixture: nothing fires here, so this is stale")
    v + 1
}
