// R3 negative fixture: seeded, reproducible randomness is fine.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn roll(seed: u64) -> u64 {
    let note = "thread_rng and from_entropy are banned in this domain";
    let _ = note;
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen()
}
