//! Fixture-driven rule tests: one positive and one negative fixture per
//! rule, plus a tricky-lexing torture file and suppression semantics.
//!
//! Fixtures live in `tests/fixtures/` and are linted from their raw text
//! (they are never compiled), under an explicitly chosen domain.

use redcr_lint::{lint_source, Domain, Report, Violation};

fn lint(name: &str, domain: Domain, src: &str) -> Report {
    lint_source(&format!("fixtures/{name}"), domain, src)
}

fn rules_of(report: &Report) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = report.unsuppressed().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

fn only_rule<'a>(report: &'a Report, rule: &str) -> Vec<&'a Violation> {
    assert_eq!(rules_of(report), vec![rule], "expected only {rule} findings: {report:#?}");
    report.unsuppressed().collect()
}

#[test]
fn r1_wall_clock_fires() {
    let report = lint("r1_positive.rs", Domain::Virtual, include_str!("fixtures/r1_positive.rs"));
    let v = only_rule(&report, "R1");
    // Import line, Instant::now via the import alias, and the fully
    // qualified SystemTime chain.
    assert!(v.len() >= 3, "{v:#?}");
    assert!(v.iter().any(|x| x.line == 2), "use-site line: {v:#?}");
    assert!(v.iter().any(|x| x.line == 5), "Instant::now line: {v:#?}");
    assert!(v.iter().any(|x| x.line == 6), "SystemTime::now line: {v:#?}");
}

#[test]
fn r1_textual_mentions_do_not_fire() {
    let report = lint("r1_negative.rs", Domain::Virtual, include_str!("fixtures/r1_negative.rs"));
    assert!(report.is_clean(), "{report:#?}");
}

#[test]
fn r2_hash_containers_fire() {
    let report = lint("r2_positive.rs", Domain::Virtual, include_str!("fixtures/r2_positive.rs"));
    let v = only_rule(&report, "R2");
    // Two imports plus the HashMap::new and (renamed) Seen::new call sites.
    assert!(v.len() >= 4, "{v:#?}");
    assert!(
        v.iter().any(|x| x.line == 7),
        "the `HashSet as Seen` rename must resolve at its use site: {v:#?}"
    );
}

#[test]
fn r2_ordered_containers_do_not_fire() {
    let report = lint("r2_negative.rs", Domain::Virtual, include_str!("fixtures/r2_negative.rs"));
    assert!(report.is_clean(), "{report:#?}");
}

#[test]
fn r3_unseeded_entropy_fires() {
    let report = lint("r3_positive.rs", Domain::Virtual, include_str!("fixtures/r3_positive.rs"));
    let v = only_rule(&report, "R3");
    assert!(v.iter().any(|x| x.line == 5), "thread_rng: {v:#?}");
    assert!(v.iter().any(|x| x.line == 6), "rand::random: {v:#?}");
    assert!(v.iter().any(|x| x.line == 7), "RandomState::new: {v:#?}");
}

#[test]
fn r3_seeded_rng_does_not_fire() {
    let report = lint("r3_negative.rs", Domain::Virtual, include_str!("fixtures/r3_negative.rs"));
    assert!(report.is_clean(), "{report:#?}");
}

#[test]
fn r4_panics_fire_in_hot_domain() {
    let src = include_str!("fixtures/r4_positive.rs");
    let report = lint("r4_positive.rs", Domain::Hot, src);
    let v = only_rule(&report, "R4");
    assert!(v.iter().any(|x| x.line == 4), "panic!: {v:#?}");
    assert!(v.iter().any(|x| x.line == 6), "unwrap: {v:#?}");
    assert!(v.iter().any(|x| x.line == 7), "expect: {v:#?}");

    // R4 is hot-only: the same source is legal in a virtual crate.
    let virt = lint("r4_positive.rs", Domain::Virtual, src);
    assert!(virt.is_clean(), "R4 must not fire outside hot domains: {virt:#?}");
}

#[test]
fn r4_fallible_handling_and_test_code_do_not_fire() {
    let report = lint("r4_negative.rs", Domain::Hot, include_str!("fixtures/r4_negative.rs"));
    assert!(report.is_clean(), "unwrap_or / #[cfg(test)] must not fire: {report:#?}");
}

#[test]
fn r5_opposite_lock_orders_fire() {
    let report = lint("r5_positive.rs", Domain::Virtual, include_str!("fixtures/r5_positive.rs"));
    let v = only_rule(&report, "R5");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert!(v[0].message.contains("alpha"), "{}", v[0].message);
    assert!(v[0].message.contains("beta"), "{}", v[0].message);
    assert_eq!(report.lock_classes.len(), 2, "{:?}", report.lock_classes);
    assert_eq!(report.lock_edges.len(), 2, "{:?}", report.lock_edges);
}

#[test]
fn r5_consistent_lock_order_does_not_fire() {
    let report = lint("r5_negative.rs", Domain::Virtual, include_str!("fixtures/r5_negative.rs"));
    assert!(report.is_clean(), "{report:#?}");
    // The pass still saw the nesting — it is the *cycle* that is absent.
    assert_eq!(report.lock_edges.len(), 1, "{:?}", report.lock_edges);
}

#[test]
fn r6_relaxed_is_advisory() {
    let report = lint("r6_positive.rs", Domain::Virtual, include_str!("fixtures/r6_positive.rs"));
    let v = only_rule(&report, "R6");
    assert!(v.iter().any(|x| x.line == 5), "{v:#?}");
    assert!(v.iter().all(|x| x.advisory), "R6 must be advisory: {v:#?}");
}

#[test]
fn r6_seqcst_does_not_fire() {
    let report = lint("r6_negative.rs", Domain::Virtual, include_str!("fixtures/r6_negative.rs"));
    assert!(report.is_clean(), "{report:#?}");
}

#[test]
fn tricky_lexing_only_the_real_violation_fires() {
    let report = lint("tricky_lexing.rs", Domain::Hot, include_str!("fixtures/tricky_lexing.rs"));
    let v: Vec<_> = report.unsuppressed().collect();
    assert_eq!(v.len(), 1, "decoys in strings/comments fired: {v:#?}");
    assert_eq!(v[0].rule, "R4");
    assert_eq!(v[0].line, 33, "the real unwrap is on line 33: {v:#?}");
}

#[test]
fn suppression_semantics() {
    let report = lint("suppressions.rs", Domain::Hot, include_str!("fixtures/suppressions.rs"));
    // Trailing and preceding-line allows suppress their violations, with
    // the reason preserved on the finding.
    let suppressed: Vec<_> = report.violations.iter().filter(|v| v.suppressed.is_some()).collect();
    assert_eq!(suppressed.len(), 2, "{report:#?}");
    assert!(suppressed.iter().all(|v| v.rule == "R4"));
    assert!(suppressed.iter().all(|v| v.suppressed.as_deref().unwrap().starts_with("fixture:")));
    // The reason-less allow suppresses nothing: its unwrap stays live.
    let live: Vec<_> = report.unsuppressed().collect();
    assert_eq!(live.len(), 1, "{live:#?}");
    assert_eq!(live[0].line, 15);
    // And both bad allows are reported: one malformed, one stale.
    assert_eq!(report.bad_suppressions.len(), 2, "{:#?}", report.bad_suppressions);
    assert!(report.bad_suppressions.iter().any(|b| b.missing_reason && b.line == 15));
    assert!(report.bad_suppressions.iter().any(|b| !b.missing_reason && b.line == 19));
}

#[test]
fn r7_park_under_lock_fires() {
    let report = lint("r7_positive.rs", Domain::Hot, include_str!("fixtures/r7_positive.rs"));
    let v = only_rule(&report, "R7");
    assert_eq!(v.len(), 2, "{v:#?}");
    // The resolved park-capable call is a deny; the unknown callee
    // (`probe`, an `impl Fn` parameter) is an advisory.
    let deny: Vec<_> = v.iter().filter(|x| !x.advisory).collect();
    let advisory: Vec<_> = v.iter().filter(|x| x.advisory).collect();
    assert_eq!(deny.len(), 1, "{v:#?}");
    assert!(deny[0].message.contains("Mail::recv"), "{}", deny[0].message);
    assert!(deny[0].message.contains("fixture::state"), "{}", deny[0].message);
    assert_eq!(advisory.len(), 1, "{v:#?}");
    assert!(advisory[0].message.contains("probe"), "{}", advisory[0].message);
}

#[test]
fn r7_guard_released_before_park_does_not_fire() {
    let report = lint("r7_negative.rs", Domain::Hot, include_str!("fixtures/r7_negative.rs"));
    assert!(report.is_clean(), "{report:#?}");
}

#[test]
fn r8_blocking_in_coroutine_fires() {
    let report = lint("r8_positive.rs", Domain::Hot, include_str!("fixtures/r8_positive.rs"));
    let v = only_rule(&report, "R8");
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().any(|x| x.message.contains("std::fs::write")), "{v:#?}");
    assert!(v.iter().any(|x| x.message.contains("std::thread::yield_now")), "{v:#?}");
    assert!(v.iter().all(|x| !x.advisory), "R8 is a deny: {v:#?}");
    // The closure handed to run_batch was recognized as a coroutine root.
    assert_eq!(report.callgraph.roots.len(), 1, "{:#?}", report.callgraph.roots);
}

#[test]
fn r8_blocking_outside_coroutine_does_not_fire() {
    let report = lint("r8_negative.rs", Domain::Hot, include_str!("fixtures/r8_negative.rs"));
    assert!(report.is_clean(), "{report:#?}");
    assert_eq!(report.callgraph.roots.len(), 1, "{:#?}", report.callgraph.roots);
}

#[test]
fn r9_over_budget_root_and_recursion_fire() {
    let report = lint("r9_positive.rs", Domain::Hot, include_str!("fixtures/r9_positive.rs"));
    let v = only_rule(&report, "R9");
    // One over-budget deny on the root, one recursion advisory — the
    // cycle is reported once, not once per unrolling.
    let deny: Vec<_> = v.iter().filter(|x| !x.advisory).collect();
    let advisory: Vec<_> = v.iter().filter(|x| x.advisory).collect();
    assert_eq!(deny.len(), 1, "{v:#?}");
    assert!(deny[0].message.contains("128 KiB"), "{}", deny[0].message);
    assert_eq!(advisory.len(), 1, "{v:#?}");
    assert!(advisory[0].message.contains("recursion cycle"), "{}", advisory[0].message);
    assert!(advisory[0].message.contains("descend"), "{}", advisory[0].message);
    // The artifact carries the root's bound, over budget.
    assert_eq!(report.callgraph.roots.len(), 1, "{:#?}", report.callgraph.roots);
    let root = &report.callgraph.roots[0];
    assert!(root.bound_bytes > 128 * 1024, "{root:#?}");
    assert!(!root.recursive, "{root:#?}");
    assert!(root.path.iter().any(|f| f == "huge_frame"), "{root:#?}");
}

#[test]
fn r9_shallow_root_does_not_fire() {
    let report = lint("r9_negative.rs", Domain::Hot, include_str!("fixtures/r9_negative.rs"));
    assert!(report.is_clean(), "{report:#?}");
    let root = &report.callgraph.roots[0];
    assert!(root.bound_bytes > 1024, "the 1 KiB scratch buffer must be counted: {root:#?}");
    assert!(root.bound_bytes < 16 * 1024, "{root:#?}");
    assert_eq!(report.callgraph.max_bound_bytes(), root.bound_bytes);
}

#[test]
fn r10_noncooperative_spin_fires() {
    let report = lint("r10_positive.rs", Domain::Hot, include_str!("fixtures/r10_positive.rs"));
    let v = only_rule(&report, "R10");
    assert_eq!(v.len(), 2, "one per loop flavor: {v:#?}");
    assert!(v.iter().any(|x| x.message.contains("`loop`")), "{v:#?}");
    assert!(v.iter().any(|x| x.message.contains("`while`")), "{v:#?}");
}

#[test]
fn r10_cooperative_and_for_loops_do_not_fire() {
    let report = lint("r10_negative.rs", Domain::Hot, include_str!("fixtures/r10_negative.rs"));
    assert!(report.is_clean(), "{report:#?}");
}
