//! R5: the lock-order pass.
//!
//! Extracts `Mutex`/`RwLock` acquisition sites (`….lock()`, `….read()`,
//! `….write()` are all treated as `.lock()`-like; only `.lock()` exists in
//! this workspace) per function, tracks which guards are *held* when a
//! second lock is taken, builds the inter-crate lock graph over *lock
//! classes* (`crate::receiver-field`), and reports any cycle.
//!
//! Heuristics (documented so their limits are explicit):
//!
//! * a lock bound by `let g = x.lock();` (or reassigned `g = x.lock();`)
//!   is held until `drop(g)` or the end of the function — scopes are not
//!   modelled, which over-approximates hold ranges (safe direction: may
//!   report an edge that a tight scope actually prevents, never misses a
//!   real nesting);
//! * a lock used as a temporary (`x.lock().method(…)`) is released at the
//!   end of its statement and creates no edge to later acquisitions;
//! * lock classes are named by the receiver field/variable, qualified by
//!   crate — two same-named fields in one crate would merge (none do
//!   today).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, Tok, Token};
use crate::report::{LockEdge, Violation};
use crate::rules::{match_brace, RATIONALE_R5};

/// One acquisition event inside a function.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Lock class (`crate::field`).
    pub class: String,
    /// Line of the `.lock()` call.
    pub line: u32,
    /// Guard binding name when bound (`let g = …` / `g = …`).
    pub binding: Option<String>,
    /// True when the guard is a statement temporary.
    pub temporary: bool,
}

/// A function's ordered lock events.
#[derive(Debug, Clone)]
pub struct FnLockSeq {
    /// Workspace-relative file.
    pub file: String,
    /// Function name.
    pub func: String,
    /// Events in source order: acquisitions and explicit `drop(…)`s.
    pub events: Vec<Event>,
}

/// An event in a function body.
#[derive(Debug, Clone)]
pub enum Event {
    /// A lock acquisition.
    Acquire(Acquire),
    /// `drop(binding)`.
    Drop(String),
}

/// Extracts lock sequences for every function in a file. `skip` masks
/// test-only tokens.
pub fn extract(rel: &str, crate_name: &str, lexed: &Lexed, skip: &[bool]) -> Vec<FnLockSeq> {
    let toks = &lexed.tokens;
    // Locate fn bodies (start, end) in token indices.
    let mut spans: Vec<(usize, usize, String)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_fn = matches!(&toks[i].tok, Tok::Ident(s) if s == "fn") && !skip[i];
        if !is_fn {
            i += 1;
            continue;
        }
        let name = match toks.get(i + 1).map(|t| &t.tok) {
            Some(Tok::Ident(n)) => n.clone(),
            _ => {
                i += 1;
                continue;
            }
        };
        // Scan to the body `{` or a `;` (trait method without body).
        let mut j = i + 2;
        let mut body = None;
        while j < toks.len() {
            match toks[j].tok {
                Tok::Punct('{') => {
                    body = Some(j);
                    break;
                }
                Tok::Punct(';') => break,
                _ => j += 1,
            }
        }
        if let Some(open) = body {
            let close = match_brace(toks, open);
            spans.push((open, close, name));
            i = open + 1; // nested fns get their own span
        } else {
            i = j + 1;
        }
    }

    // Assign each acquisition to the innermost enclosing fn.
    let innermost = |idx: usize| -> Option<usize> {
        spans
            .iter()
            .enumerate()
            .filter(|(_, (s, e, _))| *s <= idx && idx <= *e)
            .min_by_key(|(_, (s, e, _))| e - s)
            .map(|(k, _)| k)
    };

    let mut seqs: Vec<FnLockSeq> = spans
        .iter()
        .map(|(_, _, name)| FnLockSeq {
            file: rel.to_string(),
            func: name.clone(),
            events: Vec::new(),
        })
        .collect();

    let mut k = 0usize;
    while k + 3 < toks.len() {
        if skip[k] {
            k += 1;
            continue;
        }
        // `drop ( ident )`
        if let Tok::Ident(id) = &toks[k].tok {
            if id == "drop"
                && matches!(toks[k + 1].tok, Tok::Punct('('))
                && matches!(&toks[k + 2].tok, Tok::Ident(_))
                && matches!(toks[k + 3].tok, Tok::Punct(')'))
            {
                if let (Some(f), Tok::Ident(b)) = (innermost(k), &toks[k + 2].tok) {
                    seqs[f].events.push(Event::Drop(b.clone()));
                }
                k += 4;
                continue;
            }
        }
        // `. lock ( )`
        let is_lock = matches!(toks[k].tok, Tok::Punct('.'))
            && matches!(&toks[k + 1].tok, Tok::Ident(s) if s == "lock")
            && matches!(toks[k + 2].tok, Tok::Punct('('))
            && matches!(toks[k + 3].tok, Tok::Punct(')'));
        if !is_lock {
            k += 1;
            continue;
        }
        let Some(f) = innermost(k) else {
            k += 4;
            continue;
        };
        let receiver = receiver_name(toks, k);
        let class = format!("{crate_name}::{receiver}");
        // Temporary vs bound: look past trailing `.unwrap()` / `.expect(…)`.
        let mut after = k + 4;
        loop {
            let adapter = matches!(toks.get(after).map(|t| &t.tok), Some(Tok::Punct('.')))
                && matches!(
                    toks.get(after + 1).map(|t| &t.tok),
                    Some(Tok::Ident(s)) if s == "unwrap" || s == "expect"
                );
            if !adapter {
                break;
            }
            // Skip `.name ( … )` with balanced parens.
            let mut p = after + 2;
            if matches!(toks.get(p).map(|t| &t.tok), Some(Tok::Punct('('))) {
                let mut depth = 0i32;
                while p < toks.len() {
                    match toks[p].tok {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                p += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    p += 1;
                }
            }
            after = p;
        }
        let temporary = matches!(toks.get(after).map(|t| &t.tok), Some(Tok::Punct('.')));
        let binding = if temporary { None } else { binding_name(toks, k) };
        seqs[f].events.push(Event::Acquire(Acquire {
            class,
            line: toks[k + 1].line,
            binding,
            temporary,
        }));
        k += 4;
    }

    seqs.retain(|s| !s.events.is_empty());
    seqs
}

/// Walks back from the `.` of `.lock()` to name the receiver: the nearest
/// field/variable identifier, skipping over index expressions.
fn receiver_name(toks: &[Token], dot: usize) -> String {
    let mut j = dot;
    loop {
        if j == 0 {
            return "<expr>".into();
        }
        j -= 1;
        match &toks[j].tok {
            Tok::Ident(s) if s == "self" => return "self".into(),
            Tok::Ident(s) => return s.clone(),
            Tok::Punct(']') => {
                // Skip the index expression to its `[`.
                let mut depth = 0i32;
                while j > 0 {
                    match toks[j].tok {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
            }
            Tok::Punct(')') => {
                let mut depth = 0i32;
                while j > 0 {
                    match toks[j].tok {
                        Tok::Punct(')') => depth += 1,
                        Tok::Punct('(') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
            }
            Tok::Punct('.') => {}
            _ => return "<expr>".into(),
        }
    }
}

/// Finds the binding a lock expression is assigned to: walk back over the
/// receiver chain to `=`, then take the identifier before it.
fn binding_name(toks: &[Token], dot: usize) -> Option<String> {
    let mut j = dot;
    // Walk back over the receiver chain (idents / `.` / index brackets).
    while j > 0 {
        j -= 1;
        match &toks[j].tok {
            Tok::Ident(_) | Tok::Punct('.') => {}
            Tok::Punct(']') => {
                let mut depth = 0i32;
                while j > 0 {
                    match toks[j].tok {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
            }
            Tok::Punct('=') => {
                // Exclude `==`, `!=`, `<=`, `>=`, `+=`-style tokens.
                if j > 0
                    && matches!(
                        toks[j - 1].tok,
                        Tok::Punct('=')
                            | Tok::Punct('!')
                            | Tok::Punct('<')
                            | Tok::Punct('>')
                            | Tok::Punct('+')
                            | Tok::Punct('-')
                            | Tok::Punct('*')
                            | Tok::Punct('/')
                    )
                {
                    return None;
                }
                if let Some(Tok::Ident(name)) = toks.get(j - 1).map(|t| &t.tok) {
                    return Some(name.clone());
                }
                return None;
            }
            _ => return None,
        }
    }
    None
}

/// Builds the lock graph from all functions' sequences and reports cycles.
pub fn analyze(seqs: &[FnLockSeq]) -> (Vec<String>, Vec<LockEdge>, Vec<Violation>) {
    let mut classes: BTreeSet<String> = BTreeSet::new();
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();

    for seq in seqs {
        // (class, binding) currently presumed held.
        let mut held: Vec<(String, Option<String>)> = Vec::new();
        for ev in &seq.events {
            match ev {
                Event::Drop(name) => {
                    held.retain(|(_, b)| b.as_deref() != Some(name.as_str()));
                }
                Event::Acquire(a) => {
                    classes.insert(a.class.clone());
                    for (h, _) in &held {
                        if *h != a.class {
                            edges.entry((h.clone(), a.class.clone())).or_insert_with(|| LockEdge {
                                held: h.clone(),
                                acquired: a.class.clone(),
                                file: seq.file.clone(),
                                line: a.line,
                                func: seq.func.clone(),
                            });
                        }
                    }
                    if !a.temporary {
                        // A rebind of the same name replaces the old guard.
                        if let Some(b) = &a.binding {
                            held.retain(|(_, hb)| hb.as_deref() != Some(b.as_str()));
                        }
                        held.push((a.class.clone(), a.binding.clone()));
                    }
                }
            }
        }
    }

    let edge_list: Vec<LockEdge> = edges.values().cloned().collect();
    let violations = find_cycles(&classes, &edges);
    (classes.into_iter().collect(), edge_list, violations)
}

/// DFS cycle detection over the class graph; one violation per cycle
/// found, anchored at a representative edge site.
fn find_cycles(
    classes: &BTreeSet<String>,
    edges: &BTreeMap<(String, String), LockEdge>,
) -> Vec<Violation> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (h, a) in edges.keys() {
        adj.entry(h.as_str()).or_default().push(a.as_str());
    }
    let mut violations = Vec::new();
    let mut color: BTreeMap<&str, u8> = classes.iter().map(|c| (c.as_str(), 0u8)).collect();
    let mut stack: Vec<&str> = Vec::new();

    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        color: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
        cycles: &mut Vec<Vec<String>>,
    ) {
        color.insert(node, 1);
        stack.push(node);
        for &next in adj.get(node).map(Vec::as_slice).unwrap_or_default() {
            match color.get(next).copied().unwrap_or(0) {
                0 => dfs(next, adj, color, stack, cycles),
                1 => {
                    let pos = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[pos..].iter().map(|s| (*s).to_string()).collect();
                    cycle.push(next.to_string());
                    cycles.push(cycle);
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(node, 2);
    }

    let mut cycles: Vec<Vec<String>> = Vec::new();
    for c in classes {
        if color.get(c.as_str()).copied().unwrap_or(0) == 0 {
            dfs(c.as_str(), &adj, &mut color, &mut stack, &mut cycles);
        }
    }
    for cycle in cycles {
        // Anchor at the edge closing the cycle.
        let anchor = edges
            .get(&(cycle[cycle.len() - 2].clone(), cycle[cycle.len() - 1].clone()))
            .or_else(|| edges.values().next());
        let (file, line) = anchor.map(|e| (e.file.clone(), e.line)).unwrap_or_default();
        violations.push(Violation {
            rule: "R5",
            file,
            line,
            advisory: false,
            message: format!("lock-order cycle: {}", cycle.join(" -> ")),
            rationale: RATIONALE_R5,
            suppressed: None,
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_skip_mask;

    fn run(src: &str) -> (Vec<String>, Vec<LockEdge>, Vec<Violation>) {
        let lexed = lex(src);
        let skip = test_skip_mask(&lexed);
        let seqs = extract("t.rs", "t", &lexed, &skip);
        analyze(&seqs)
    }

    #[test]
    fn nested_acquisition_produces_edge() {
        let src = "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }";
        let (classes, edges, v) = run(src);
        assert_eq!(classes, vec!["t::alpha", "t::beta"]);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].held, "t::alpha");
        assert_eq!(edges[0].acquired, "t::beta");
        assert!(v.is_empty());
    }

    #[test]
    fn temporary_guard_creates_no_edge() {
        let src = "fn f(&self) { self.alpha.lock().push(1); let b = self.beta.lock(); }";
        let (_, edges, v) = run(src);
        assert!(edges.is_empty(), "{edges:?}");
        assert!(v.is_empty());
    }

    #[test]
    fn drop_releases_guard() {
        let src = "fn f(&self) { let a = self.alpha.lock(); drop(a); let b = self.beta.lock(); }";
        let (_, edges, _) = run(src);
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn opposite_orders_report_cycle() {
        let src = "
            fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
            fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }
        ";
        let (_, edges, v) = run(src);
        assert_eq!(edges.len(), 2);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R5");
        assert!(v[0].message.contains("alpha"), "{}", v[0].message);
    }

    #[test]
    fn reassignment_replaces_guard() {
        let src = "fn f(&self) { let mut a = self.alpha.lock(); a = self.alpha.lock(); let b = self.beta.lock(); }";
        let (_, edges, _) = run(src);
        // alpha held (rebind, not doubled) → one edge alpha→beta.
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn test_code_is_masked() {
        let src = "#[cfg(test)] mod tests { fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } }";
        let (classes, edges, _) = run(src);
        assert!(classes.is_empty());
        assert!(edges.is_empty());
    }

    #[test]
    fn indexed_receiver_resolves_to_field() {
        let src =
            "fn f(&self, i: usize) { let g = self.boxes[i].lock(); let h = self.world.lock(); }";
        let (classes, _, _) = run(src);
        assert!(classes.contains(&"t::boxes".to_string()), "{classes:?}");
    }
}
