//! Whole-workspace call graph and the interprocedural rules R7–R10.
//!
//! Built on the [`crate::parser`] AST: every call site is resolved against
//! an index of all parsed functions (alias-expanded path calls, method
//! calls by name across every impl — an over-approximation; calls through
//! function values stay unresolved — an under-approximation surfaced as
//! R7 advisories). The graph is rooted at the coroutine entry points:
//! closure literals passed to `run_batch` (the rank bodies) or to a `run`
//! method (the simmpi/redundancy world rank closures, which execute on
//! coroutine stacks), with every closure also linked from its definer so
//! `wait_match` waker closures and heal/segment loops are reachable.
//!
//! Rules:
//!
//! * **R7 park-under-lock** — a call that can transitively reach
//!   `redcr_sched::park_current` / `yield_now` / `Mailbox::wait_match`
//!   while a tracked lock guard is live (unknown callees under a guard
//!   are advisories);
//! * **R8 blocking-call-in-coroutine** — an OS-blocking call
//!   (`std::thread::sleep` / `std::thread::yield_now`, `Condvar::wait*`,
//!   blocking `std::fs` / `std::net` / `std::io::stdin` I/O) reachable
//!   from a coroutine root;
//! * **R9 stack-budget** — per-coroutine-root max-stack bound (frame
//!   estimates summed along the deepest call chain) against the
//!   `[stack_budget]` budget in `detlint.toml`, plus recursion-cycle
//!   reports (a cycle makes the bound unbounded);
//! * **R10 non-cooperative-spin** — a `loop`/`while` in coroutine-reachable
//!   code none of whose body calls can reach a yield, park, or recv
//!   (`for` loops are bounded by their iterator and exempt).

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{Callee, FnDef, LoopKind, Workspace};
use crate::report::{CallEdge, CallGraph, RootBound, Violation};
use crate::rules::{RATIONALE_R10, RATIONALE_R7, RATIONALE_R8, RATIONALE_R9};

/// Calls with one of these final path segments take the rank closure that
/// becomes a coroutine root: `run_batch` is the scheduler entry itself,
/// `run` covers `World::run` / `RedundantWorld::run`, whose closure is
/// forwarded onto the pool.
const SPAWNER_SEGMENTS: &[&str] = &["run_batch", "run"];

/// OS-blocking fully-qualified path prefixes (matched after alias
/// expansion, on `::` boundaries like the R1–R3 tables).
const BLOCKING_PATHS: &[&str] = &[
    "std::thread::sleep",
    "std::thread::park",
    "std::thread::yield_now",
    "std::fs",
    "std::net",
    "std::io::stdin",
    "std::process::Command",
];

/// `Condvar`-style waits, recognized by method name plus a receiver whose
/// identifier mentions `cond` (the workspace's own virtual-time `wait` on
/// communicators must not match).
const CONDVAR_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Method names ubiquitous on std types. The unique-name fallback must
/// not claim these: `.clear()` on a `VecDeque` is not `Mailbox::clear`
/// just because the workspace happens to define `clear` exactly once.
const STD_METHOD_NAMES: &[&str] = &[
    "all", "any", "append", "as_ref", "borrow", "borrow_mut", "chars", "clear", "clone", "cloned",
    "collect", "contains", "copied", "count", "drain", "entry", "enumerate", "extend", "filter",
    "find", "first", "flatten", "fold", "get", "get_mut", "insert", "into_iter", "is_empty",
    "iter", "iter_mut", "join", "keys", "last", "len", "load", "map", "max", "min", "next",
    "pop", "pop_front", "position", "push", "push_back", "push_str", "remove", "retain", "rev",
    "skip", "sort", "sort_by", "sort_by_key", "split", "split_off", "store", "sum", "swap",
    "take", "to_string", "truncate", "values", "windows", "write", "zip",
];

/// Result of the interprocedural pass.
#[derive(Debug, Default)]
pub struct Analysis {
    /// R7–R10 findings (unsuppressed; suppressions apply later).
    pub violations: Vec<Violation>,
    /// The artifact: nodes/edges/roots with stack bounds.
    pub artifact: CallGraph,
}

/// A resolved call target.
enum Target {
    /// Indices of candidate workspace functions, precisely resolved
    /// (receiver/owner/path match — at most a couple of candidates).
    Workspace(Vec<usize>),
    /// Trait-dispatch site widened to every same-named impl (CHA
    /// over-approximation). Effects (`can_park`, coroutine membership,
    /// R10 cooperativity) propagate through these edges, but the R9 depth
    /// chain does not recurse *through* them: delegation wrappers
    /// (`self.inner.recv_ns(…)`) would union with their sibling impls and
    /// manufacture recursion cycles that poison every stack bound. A
    /// dispatch site instead contributes one level of its candidates'
    /// precise-chain bounds.
    Dispatch(Vec<usize>),
    /// An external call classified as OS-blocking, with the displayed path.
    Blocking(String),
    /// An unknown callee behind a function value.
    Dynamic(String),
    /// An external leaf (std helpers, constructors, …): no effect.
    External,
}

impl Target {
    /// Workspace candidates regardless of precision, for effect
    /// propagation.
    fn candidates(&self) -> &[usize] {
        match self {
            Target::Workspace(c) | Target::Dispatch(c) => c,
            _ => &[],
        }
    }
}

/// Runs the whole pass over the parsed workspace.
pub fn analyze(ws: &Workspace, budget_kb: u64) -> Analysis {
    let fns = &ws.functions;
    let n = fns.len();

    // ----- index ------------------------------------------------------
    // Last-segment name → candidates; `Type::method` → exact candidates.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_qual: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        if f.is_closure {
            continue;
        }
        let last = f.name.rsplit("::").next().unwrap_or(&f.name);
        by_name.entry(last).or_default().push(i);
        if f.name.contains("::") {
            by_qual.entry(f.name.as_str()).or_default().push(i);
        }
    }

    // ----- resolution -------------------------------------------------
    // targets[f][c] parallels fns[f].calls[c].
    let empty = BTreeMap::new();
    let targets: Vec<Vec<Target>> = fns
        .iter()
        .map(|f| {
            let aliases = ws.file_aliases.get(&f.file).unwrap_or(&empty);
            f.calls
                .iter()
                .map(|c| resolve(&c.callee, f, fns, aliases, &by_name, &by_qual))
                .collect()
        })
        .collect();

    // ----- seeds & fixpoints ------------------------------------------
    // can_park: reaches a park/yield/wait_match primitive.
    // Seeded by name so fixture files can stub their own primitives; the
    // workspace defines these only in `sched` (park/yield) and `simmpi`
    // (the mailbox recv path).
    let mut can_park = vec![false; n];
    for (i, f) in fns.iter().enumerate() {
        let last = f.name.rsplit("::").next().unwrap_or(&f.name);
        if matches!(last, "park_current" | "yield_now" | "wait_match") {
            can_park[i] = true;
        }
    }
    loop {
        let mut changed = false;
        for i in 0..n {
            if can_park[i] {
                continue;
            }
            let reaches =
                targets[i].iter().any(|t| t.candidates().iter().any(|&c| can_park[c]));
            if reaches {
                can_park[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Coroutine roots: closures passed to a spawner.
    let roots: Vec<usize> = fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.is_closure
                && f.passed_to.as_deref().is_some_and(|p| SPAWNER_SEGMENTS.contains(&p))
        })
        .map(|(i, _)| i)
        .collect();

    // Coroutine-reachable set: forward closure from the roots.
    let mut coroutine = vec![false; n];
    let mut stack: Vec<usize> = roots.clone();
    while let Some(i) = stack.pop() {
        if coroutine[i] {
            continue;
        }
        coroutine[i] = true;
        for t in &targets[i] {
            for &c in t.candidates() {
                if !coroutine[c] {
                    stack.push(c);
                }
            }
        }
    }

    let mut out = Analysis::default();

    // ----- R7: park/yield under a live lock guard ---------------------
    for (i, f) in fns.iter().enumerate() {
        for (ci, call) in f.calls.iter().enumerate() {
            if call.guards.is_empty() {
                continue;
            }
            // A closure *defined* under a guard is not called there; its
            // own call sites are checked with their own guard context.
            if matches!(call.callee, Callee::Closure(_)) {
                continue;
            }
            let held = call.guards.join(", ");
            match &targets[i][ci] {
                Target::Workspace(cands) | Target::Dispatch(cands) => {
                    if let Some(&parker) = cands.iter().find(|&&c| can_park[c]) {
                        out.violations.push(Violation {
                            rule: "R7",
                            file: f.file.clone(),
                            line: call.line,
                            advisory: false,
                            message: format!(
                                "call of `{}` can reach a park/yield while holding `{held}`",
                                fns[parker].name
                            ),
                            rationale: RATIONALE_R7,
                            suppressed: None,
                        });
                    }
                }
                Target::Dynamic(name) => {
                    out.violations.push(Violation {
                        rule: "R7",
                        file: f.file.clone(),
                        line: call.line,
                        advisory: true,
                        message: format!(
                            "call through function value `{name}` while holding `{held}` — callee unknown, may park"
                        ),
                        rationale: RATIONALE_R7,
                        suppressed: None,
                    });
                }
                _ => {}
            }
        }
    }

    // ----- R8: OS-blocking calls in coroutine-reachable code ----------
    for (i, f) in fns.iter().enumerate() {
        if !coroutine[i] {
            continue;
        }
        for (ci, call) in f.calls.iter().enumerate() {
            if let Target::Blocking(path) = &targets[i][ci] {
                out.violations.push(Violation {
                    rule: "R8",
                    file: f.file.clone(),
                    line: call.line,
                    advisory: false,
                    message: format!(
                        "OS-blocking call `{path}` is reachable from a coroutine root"
                    ),
                    rationale: RATIONALE_R8,
                    suppressed: None,
                });
            }
        }
    }

    // ----- R9: stack bounds + recursion cycles ------------------------
    // Longest-chain DFS with cycle detection over workspace edges.
    let mut bound = vec![0u64; n]; // frame + deepest callee chain
    let mut chain: Vec<Option<usize>> = vec![None; n]; // deepest callee
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut recursive = vec![false; n]; // on or reaching a cycle
    let mut cycles: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if state[start] == 0 {
            dfs_bound(
                start, fns, &targets, &mut bound, &mut chain, &mut state, &mut recursive,
                &mut cycles, &mut Vec::new(),
            );
        }
    }
    for cycle in &cycles {
        let Some(&head) = cycle.iter().min_by_key(|&&i| &fns[i].name) else { continue };
        let names: Vec<&str> = cycle.iter().map(|&i| fns[i].name.as_str()).collect();
        out.violations.push(Violation {
            rule: "R9",
            file: fns[head].file.clone(),
            line: fns[head].line,
            advisory: true,
            message: format!(
                "recursion cycle `{} -> {}` makes the stack bound unbounded",
                names.join(" -> "),
                fns[head].name
            ),
            rationale: RATIONALE_R9,
            suppressed: None,
        });
    }

    let budget_bytes = budget_kb.saturating_mul(1024);
    for &r in &roots {
        let mut path = Vec::new();
        let mut cur = Some(r);
        while let Some(i) = cur {
            path.push(fns[i].name.clone());
            if path.len() > n {
                break; // cycle safety
            }
            cur = chain[i];
        }
        out.artifact.roots.push(RootBound {
            root: fns[r].name.clone(),
            file: fns[r].file.clone(),
            line: fns[r].line,
            bound_bytes: bound[r],
            frames: path.len() as u32,
            recursive: recursive[r],
            path,
        });
        if !recursive[r] && bound[r] > budget_bytes {
            out.violations.push(Violation {
                rule: "R9",
                file: fns[r].file.clone(),
                line: fns[r].line,
                advisory: false,
                message: format!(
                    "coroutine root `{}` needs an estimated {} bytes of stack, over the {budget_kb} KiB budget",
                    fns[r].name, bound[r]
                ),
                rationale: RATIONALE_R9,
                suppressed: None,
            });
        }
    }

    // ----- R10: loops that cannot yield -------------------------------
    for (i, f) in fns.iter().enumerate() {
        if !coroutine[i] {
            continue;
        }
        for (li, lp) in f.loops.iter().enumerate() {
            if lp.kind == LoopKind::For {
                continue;
            }
            let cooperative = f.calls.iter().enumerate().any(|(ci, call)| {
                call.loops.contains(&li)
                    && match &targets[i][ci] {
                        Target::Workspace(cands) | Target::Dispatch(cands) => {
                            cands.iter().any(|&c| can_park[c])
                        }
                        // An unknown callee may yield: stay quiet rather
                        // than flood callback-driven loops.
                        Target::Dynamic(_) => true,
                        _ => false,
                    }
            });
            if !cooperative {
                let kw = if lp.kind == LoopKind::Loop { "loop" } else { "while" };
                out.violations.push(Violation {
                    rule: "R10",
                    file: f.file.clone(),
                    line: lp.line,
                    advisory: false,
                    message: format!(
                        "`{kw}` in coroutine-reachable `{}` can iterate without reaching a yield, park, or recv",
                        f.name
                    ),
                    rationale: RATIONALE_R10,
                    suppressed: None,
                });
            }
        }
    }

    // ----- artifact ---------------------------------------------------
    out.artifact.functions = n;
    let mut seen = BTreeSet::new();
    for (i, f) in fns.iter().enumerate() {
        for (ci, call) in f.calls.iter().enumerate() {
            for &c in targets[i][ci].candidates() {
                if seen.insert((i, c)) {
                    out.artifact.edges.push(CallEdge {
                        caller: f.name.clone(),
                        callee: fns[c].name.clone(),
                        file: f.file.clone(),
                        line: call.line,
                    });
                }
            }
        }
    }
    out
}

/// The impl type owning `caller` (`Mailbox::wait_match::{closure@602}` →
/// `Mailbox`), if it has one.
fn owner_of(caller: &FnDef) -> Option<&str> {
    let first = caller.name.split("::").next()?;
    first.chars().next().is_some_and(char::is_uppercase).then_some(first)
}

/// Lowercased alphanumerics, for receiver-name ↔ type-name matching.
fn normalize(s: &str) -> String {
    s.chars().filter(char::is_ascii_alphanumeric).map(|c| c.to_ascii_lowercase()).collect()
}

/// Whether a receiver identifier plausibly names the type: exact after
/// normalization (`comm` → `Comm`), or a *dominant* suffix (`solver` →
/// `CgSolver`, but not `groups` → `ReplicaGroups` — a short generic
/// suffix must not claim a long compound type name).
fn receiver_matches(recv_norm: &str, type_norm: &str) -> bool {
    recv_norm == type_norm
        || (type_norm.ends_with(recv_norm) && recv_norm.len() * 2 >= type_norm.len())
}

/// Trait-dispatch widening: a candidate set consisting only of bodyless
/// trait-method declarations is a dynamic-dispatch site — widen it to
/// every same-named function so effects (`can_park`, blocking reach)
/// propagate through the trait boundary.
fn widen_bodyless(
    cands: Vec<usize>,
    name: &str,
    fns: &[FnDef],
    by_name: &BTreeMap<&str, Vec<usize>>,
) -> Target {
    if !cands.is_empty() && cands.iter().all(|&c| !fns[c].has_body) {
        if let Some(all) = by_name.get(name) {
            return Target::Dispatch(all.clone());
        }
    }
    Target::Workspace(cands)
}

/// Resolves one call site. Alias expansion mirrors the R1–R3 resolver.
///
/// Precision policy (the soundness caveats documented in DESIGN §4k):
/// `self.m()` / `Self::m()` resolve through the caller's impl type;
/// other method calls resolve only when the receiver's name matches a
/// workspace type (`comm.recv()` → `Comm::recv`) or the method name is
/// defined exactly once in the workspace. Everything else is External —
/// under-approximate on purpose, because matching `.push()` against every
/// impl floods the graph with phantom edges (and phantom R9 cycles).
fn resolve(
    callee: &Callee,
    caller: &FnDef,
    fns: &[FnDef],
    aliases: &BTreeMap<String, String>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_qual: &BTreeMap<&str, Vec<usize>>,
) -> Target {
    match callee {
        Callee::Closure(idx) | Callee::BoundClosure(idx) => Target::Workspace(vec![*idx]),
        Callee::Dynamic(name) => Target::Dynamic(name.clone()),
        Callee::Method { name, receiver } => {
            if CONDVAR_METHODS.contains(&name.as_str())
                && receiver.as_deref().is_some_and(|r| r.contains("cond") || r.contains("cv"))
            {
                return Target::Blocking(format!("Condvar::{name}"));
            }
            let recv = receiver.as_deref().unwrap_or("");
            if recv == "self" || recv == "Self" {
                if let Some(owner) = owner_of(caller) {
                    if let Some(idxs) = by_qual.get(format!("{owner}::{name}").as_str()) {
                        return widen_bodyless(idxs.clone(), name, fns, by_name);
                    }
                }
            } else if !recv.is_empty() {
                let recv_norm = normalize(recv);
                let mut cands: Vec<usize> = Vec::new();
                for (qual, idxs) in by_qual.iter() {
                    let Some((ty, m)) = qual.rsplit_once("::") else { continue };
                    if m == name && receiver_matches(&recv_norm, &normalize(ty)) {
                        cands.extend(idxs);
                    }
                }
                if !cands.is_empty() {
                    return widen_bodyless(cands, name, fns, by_name);
                }
            }
            if STD_METHOD_NAMES.contains(&name.as_str()) {
                return Target::External;
            }
            // `.wait(…)`-family names never fall through to the unions
            // below: the workspace's request-wait trait method shares its
            // name with `Condvar::wait`, and unioning would wire scheduler
            // condvars into the communicator graph.
            if CONDVAR_METHODS.contains(&name.as_str()) {
                return Target::External;
            }
            match by_name.get(name.as_str()) {
                // A method name defined exactly once in the workspace is
                // almost certainly that definition.
                Some(idxs) if idxs.len() == 1 => Target::Workspace(idxs.clone()),
                // Defined several times *including* a bodyless trait
                // declaration: a trait method called through a generic or
                // unrecognized receiver (`self.inner.recv_ns(…)`) — a
                // dispatch site over every impl.
                Some(idxs) if idxs.iter().any(|&c| !fns[c].has_body) => {
                    Target::Dispatch(idxs.clone())
                }
                _ => Target::External,
            }
        }
        Callee::Path(segs) => {
            // `Self::m(..)` → the caller's impl type.
            let mut segs = segs.clone();
            if segs.len() >= 2 && (segs[0] == "Self" || segs[0] == "self") {
                if let Some(owner) = owner_of(caller) {
                    segs[0] = owner.to_string();
                }
            }
            // Expand the leading alias like the banned-path resolver.
            let full: Vec<String> = match aliases.get(&segs[0]) {
                Some(exp) => {
                    let mut v: Vec<String> = exp.split("::").map(str::to_string).collect();
                    v.extend(segs[1..].iter().cloned());
                    v
                }
                None => segs,
            };
            let joined = full.join("::");
            if BLOCKING_PATHS.iter().any(|b| {
                joined == *b || (joined.starts_with(b) && joined[b.len()..].starts_with("::"))
            }) {
                return Target::Blocking(joined);
            }
            let last = full.last().map(String::as_str).unwrap_or("");
            // Exact `Type::method` match first.
            if full.len() >= 2 {
                let qualifier = &full[full.len() - 2];
                let qual = format!("{qualifier}::{last}");
                if let Some(idxs) = by_qual.get(qual.as_str()) {
                    return widen_bodyless(idxs.clone(), last, fns, by_name);
                }
                // A Type-qualified path that missed is a method of an
                // external or unparsed type (`VecDeque::new`), NOT a
                // license to match every same-named function.
                if qualifier.chars().next().is_some_and(char::is_uppercase) {
                    return Target::External;
                }
            }
            let Some(cands) = by_name.get(last) else {
                return Target::External;
            };
            if full.len() == 1 {
                // A bare call must be in scope: same crate, and a free
                // function — `check_abort(…)` can never be the method
                // `Comm::check_abort` (imports were alias-expanded above,
                // so cross-crate calls are not bare).
                let fl: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| {
                        fns[c].crate_name == caller.crate_name && !fns[c].name.contains("::")
                    })
                    .collect();
                return if fl.is_empty() { Target::External } else { Target::Workspace(fl) };
            }
            // Module-qualified path: crate hint from the first segment —
            // `redcr_sched::…` → crate dir `sched`; `crate::…` → caller's.
            let hint = match full[0].as_str() {
                "crate" | "self" | "super" => Some(caller.crate_name.clone()),
                "redcr" => Some("root".to_string()),
                s => s.strip_prefix("redcr_").map(str::to_string),
            };
            let filtered: Vec<usize> = match &hint {
                Some(h) => {
                    let fl: Vec<usize> =
                        cands.iter().copied().filter(|&c| fns[c].crate_name == *h).collect();
                    // A hint that filters everything away is treated as a
                    // bad hint (re-exports, facade paths): keep all.
                    if fl.is_empty() {
                        cands.clone()
                    } else {
                        fl
                    }
                }
                None => cands.clone(),
            };
            Target::Workspace(filtered)
        }
    }
}

/// Longest-chain DFS with cycle detection. `bound[i]` = `frame_bytes[i]`
/// plus the deepest callee bound; `chain[i]` records that callee for the
/// artifact's path. Cycles poison every function on or above them
/// (`recursive`), and each distinct back-edge cycle is recorded once.
#[allow(clippy::too_many_arguments)]
fn dfs_bound(
    i: usize,
    fns: &[FnDef],
    targets: &[Vec<Target>],
    bound: &mut [u64],
    chain: &mut [Option<usize>],
    state: &mut [u8],
    recursive: &mut [bool],
    cycles: &mut Vec<Vec<usize>>,
    path: &mut Vec<usize>,
) {
    state[i] = 1;
    path.push(i);
    let mut best = 0u64;
    let mut best_callee = None;
    for t in &targets[i] {
        let dispatch = match t {
            Target::Workspace(_) => false,
            Target::Dispatch(_) => true,
            _ => continue,
        };
        for &c in t.candidates() {
            match state[c] {
                // A dispatch candidate's own chain is computed with a
                // fresh path: CHA-widened edges must not manufacture
                // cycles across delegation wrappers.
                0 if dispatch => dfs_bound(
                    c, fns, targets, bound, chain, state, recursive, cycles, &mut Vec::new(),
                ),
                0 => dfs_bound(c, fns, targets, bound, chain, state, recursive, cycles, path),
                1 => {
                    if dispatch {
                        continue; // phantom: skip, contribute nothing
                    }
                    // Back edge: record the cycle c → … → i → c.
                    if let Some(pos) = path.iter().position(|&p| p == c) {
                        let cyc: Vec<usize> = path[pos..].to_vec();
                        if !cycles.iter().any(|k| {
                            k.len() == cyc.len() && k.iter().all(|x| cyc.contains(x))
                        }) {
                            cycles.push(cyc);
                        }
                    }
                    recursive[i] = true;
                    continue;
                }
                _ => {}
            }
            if recursive[c] && !dispatch {
                recursive[i] = true;
            }
            if bound[c] > best {
                best = bound[c];
                best_callee = Some(c);
            }
        }
    }
    bound[i] = fns[i].frame_bytes.saturating_add(best);
    chain[i] = best_callee;
    path.pop();
    state[i] = 2;
}
