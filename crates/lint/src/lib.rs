//! `redcr-lint` (`detlint`): a dependency-free determinism & concurrency
//! static-analysis pass enforcing the workspace's virtual-time contract.
//!
//! Everything this reproduction claims — bit-identical `ExecutionReport`s,
//! the trace-FNV determinism gate, measured-vs-model validation — rests on
//! one invariant: no wall-clock time, no unordered iteration, and no
//! unseeded randomness may leak into the virtual-time domain. The
//! determinism gate catches a drift *after* it ships; `detlint` catches
//! the hazard *patterns* statically, before any test runs.
//!
//! # Rules
//!
//! | id | domain        | pattern |
//! |----|---------------|---------|
//! | R1 | hot + virtual | `std::time::Instant` / `SystemTime` (wall clock) |
//! | R2 | hot + virtual | `std::collections::HashMap` / `HashSet` (RandomState iteration order) |
//! | R3 | hot + virtual | `rand::thread_rng` / `rand::random` / `RandomState` / `from_entropy` (unseeded entropy) |
//! | R4 | hot only      | `.unwrap()` / `.expect()` / `panic!`-family in rank-thread paths |
//! | R5 | hot + virtual | lock-order cycles in the inter-crate lock graph |
//! | R6 | hot + virtual | `Ordering::Relaxed` atomics (advisory) |
//! | R7 | hot + virtual | park/yield transitively reachable while a lock guard is live |
//! | R8 | hot + virtual | OS-blocking calls reachable from a coroutine root |
//! | R9 | hot + virtual | per-coroutine-root stack bound over `[stack_budget]` / recursion |
//! | R10| hot + virtual | `loop`/`while` in coroutine code with no yield/park/recv on any path |
//!
//! R1–R4 and R6 are per-file token scans. R5 and R7–R10 are
//! interprocedural: hot + virtual files are parsed into a lightweight AST
//! ([`parser`]), resolved into a whole-workspace call graph rooted at the
//! coroutine entry points, and analyzed in [`callgraph`]. The graph and
//! the per-root stack bounds are exported as a JSONL artifact.
//!
//! Domains are assigned per crate in `detlint.toml`. Suppress a finding
//! with `// detlint::allow(<rule>, reason = "…")` on the same or the
//! preceding line; the reason is mandatory — an allow without one
//! suppresses nothing and is reported as malformed. Allows naming a rule
//! id outside the registry ([`rules::RULES`]) fail the run outright.

mod callgraph;
mod config;
mod lexer;
mod lockorder;
mod parser;
mod report;
mod rules;

pub use config::{Config, Domain};
pub use report::{BadSuppression, CallEdge, CallGraph, LockEdge, Report, RootBound, Violation};
pub use rules::{RuleInfo, RULES};

use std::path::{Path, PathBuf};

/// Lints a whole workspace rooted at `root` (the directory containing
/// `detlint.toml`).
///
/// # Errors
///
/// Returns a message for config or I/O failures. Individual unreadable
/// files abort the run — a lint that silently skips files is worse than
/// one that fails loudly.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let cfg = Config::load(&root.join("detlint.toml"))?;
    lint_workspace_with(root, &cfg)
}

/// Like [`lint_workspace`], with an explicit config.
///
/// # Errors
///
/// See [`lint_workspace`].
pub fn lint_workspace_with(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &cfg.exclude, &mut files)?;
    files.sort();

    let mut report = Report::default();
    let mut lock_seqs = Vec::new();
    let mut ws = parser::Workspace::default();
    // (rel, suppressions, report_health): suppressions apply everywhere
    // they lex, but their *health* (stale/malformed/unknown) is only
    // reported where rules fire — in tooling/test files every
    // allow-shaped comment (including the linter's own docs describing
    // the syntax) would read as stale.
    let mut file_sups: Vec<(String, Vec<lexer::Suppression>, bool)> = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("{}: {e}", rel.display()))?;
        let rel_str = rel_display(rel);
        let domain = cfg.domain_for(rel);
        let lexed = lexer::lex(&src);
        let skip = rules::test_skip_mask(&lexed);
        report.violations.extend(rules::check_file(&rel_str, domain, &lexed, &skip));
        if matches!(domain, Domain::Hot | Domain::Virtual) {
            let crate_name = crate_of(rel);
            lock_seqs.extend(lockorder::extract(&rel_str, &crate_name, &lexed, &skip));
            parser::parse_file(&mut ws, &rel_str, &crate_name, domain, &lexed, &skip);
        }
        if !lexed.suppressions.is_empty() {
            let report_health = !matches!(domain, Domain::Tooling | Domain::Test);
            file_sups.push((rel_str, lexed.suppressions, report_health));
        }
        report.files_scanned += 1;
    }

    let (classes, edges, cycle_violations) = lockorder::analyze(&lock_seqs);
    report.lock_classes = classes;
    report.lock_edges = edges;
    report.violations.extend(cycle_violations);

    let analysis = callgraph::analyze(&ws, cfg.stack_budget_kb);
    report.violations.extend(analysis.violations);
    report.callgraph = analysis.artifact;

    // Suppressions apply once, at the end, so interprocedural findings
    // (R5, R7–R10) are covered exactly like per-file ones.
    for (rel, sups, report_health) in &file_sups {
        let out = rules::apply_suppressions(rel, sups, &mut report.violations);
        if *report_health {
            report.bad_suppressions.extend(out.bad_suppressions);
        }
        report.suppressions_used += out.suppressions_used;
    }
    report.violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    Ok(report)
}

/// Lints one in-memory source file under `domain` — the fixture-test and
/// seeded-violation entry point. The interprocedural passes (R5, R7–R10)
/// run over just this file with the default stack budget, so fixtures
/// exercising them must be self-contained (stub their own `park_current`
/// etc.).
pub fn lint_source(rel_name: &str, domain: Domain, src: &str) -> Report {
    let lexed = lexer::lex(src);
    let skip = rules::test_skip_mask(&lexed);
    let mut report = Report {
        violations: rules::check_file(rel_name, domain, &lexed, &skip),
        files_scanned: 1,
        ..Report::default()
    };
    if matches!(domain, Domain::Hot | Domain::Virtual) {
        let seqs = lockorder::extract(rel_name, "fixture", &lexed, &skip);
        let (classes, edges, cycles) = lockorder::analyze(&seqs);
        report.lock_classes = classes;
        report.lock_edges = edges;
        report.violations.extend(cycles);

        let mut ws = parser::Workspace::default();
        parser::parse_file(&mut ws, rel_name, "fixture", domain, &lexed, &skip);
        let analysis = callgraph::analyze(&ws, Config::default().stack_budget_kb);
        report.violations.extend(analysis.violations);
        report.callgraph = analysis.artifact;
    }
    let out = rules::apply_suppressions(rel_name, &lexed.suppressions, &mut report.violations);
    report.bad_suppressions = out.bad_suppressions;
    report.suppressions_used = out.suppressions_used;
    report.violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    report
}

fn rel_display(rel: &Path) -> String {
    rel.iter().filter_map(|c| c.to_str()).collect::<Vec<_>>().join("/")
}

fn crate_of(rel: &Path) -> String {
    let comps: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    match comps.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        _ => "root".to_string(),
    }
}

/// Recursively collects `.rs` files under `dir`, skipping excluded and
/// hidden directories. Deterministic: entries are sorted.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name.starts_with('.') || exclude.iter().any(|x| x == name) {
                continue;
            }
            collect_rs_files(root, &path, exclude, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}
