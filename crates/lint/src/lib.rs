//! `redcr-lint` (`detlint`): a dependency-free determinism & concurrency
//! static-analysis pass enforcing the workspace's virtual-time contract.
//!
//! Everything this reproduction claims — bit-identical `ExecutionReport`s,
//! the trace-FNV determinism gate, measured-vs-model validation — rests on
//! one invariant: no wall-clock time, no unordered iteration, and no
//! unseeded randomness may leak into the virtual-time domain. The
//! determinism gate catches a drift *after* it ships; `detlint` catches
//! the hazard *patterns* statically, before any test runs.
//!
//! # Rules
//!
//! | id | domain        | pattern |
//! |----|---------------|---------|
//! | R1 | hot + virtual | `std::time::Instant` / `SystemTime` (wall clock) |
//! | R2 | hot + virtual | `std::collections::HashMap` / `HashSet` (RandomState iteration order) |
//! | R3 | hot + virtual | `rand::thread_rng` / `rand::random` / `RandomState` / `from_entropy` (unseeded entropy) |
//! | R4 | hot only      | `.unwrap()` / `.expect()` / `panic!`-family in rank-thread paths |
//! | R5 | hot + virtual | lock-order cycles in the inter-crate lock graph |
//! | R6 | hot + virtual | `Ordering::Relaxed` atomics (advisory) |
//!
//! Domains are assigned per crate in `detlint.toml`. Suppress a finding
//! with `// detlint::allow(<rule>, reason = "…")` on the same or the
//! preceding line; the reason is mandatory — an allow without one
//! suppresses nothing and is reported as malformed.

mod config;
mod lexer;
mod lockorder;
mod report;
mod rules;

pub use config::{Config, Domain};
pub use report::{BadSuppression, LockEdge, Report, Violation};

use std::path::{Path, PathBuf};

/// Lints a whole workspace rooted at `root` (the directory containing
/// `detlint.toml`).
///
/// # Errors
///
/// Returns a message for config or I/O failures. Individual unreadable
/// files abort the run — a lint that silently skips files is worse than
/// one that fails loudly.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let cfg = Config::load(&root.join("detlint.toml"))?;
    lint_workspace_with(root, &cfg)
}

/// Like [`lint_workspace`], with an explicit config.
///
/// # Errors
///
/// See [`lint_workspace`].
pub fn lint_workspace_with(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &cfg.exclude, &mut files)?;
    files.sort();

    let mut report = Report::default();
    let mut lock_seqs = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("{}: {e}", rel.display()))?;
        let rel_str = rel_display(rel);
        let domain = cfg.domain_for(rel);
        let lexed = lexer::lex(&src);
        let skip = rules::test_skip_mask(&lexed);
        let outcome = rules::check_file(&rel_str, domain, &lexed, &skip);
        report.violations.extend(outcome.violations);
        // Suppression health is only meaningful where rules fire; in
        // tooling/test files every allow-shaped comment (including the
        // linter's own docs describing the syntax) would read as stale.
        if !matches!(domain, Domain::Tooling | Domain::Test) {
            report.bad_suppressions.extend(outcome.bad_suppressions);
        }
        report.suppressions_used += outcome.suppressions_used;
        if matches!(domain, Domain::Hot | Domain::Virtual) {
            let crate_name = crate_of(rel);
            lock_seqs.extend(lockorder::extract(&rel_str, &crate_name, &lexed, &skip));
        }
        report.files_scanned += 1;
    }

    let (classes, edges, cycle_violations) = lockorder::analyze(&lock_seqs);
    report.lock_classes = classes;
    report.lock_edges = edges;
    report.violations.extend(cycle_violations);
    Ok(report)
}

/// Lints one in-memory source file under `domain` — the fixture-test and
/// seeded-violation entry point. R5 runs over just this file.
pub fn lint_source(rel_name: &str, domain: Domain, src: &str) -> Report {
    let lexed = lexer::lex(src);
    let skip = rules::test_skip_mask(&lexed);
    let outcome = rules::check_file(rel_name, domain, &lexed, &skip);
    let mut report = Report {
        violations: outcome.violations,
        bad_suppressions: outcome.bad_suppressions,
        suppressions_used: outcome.suppressions_used,
        files_scanned: 1,
        ..Report::default()
    };
    if matches!(domain, Domain::Hot | Domain::Virtual) {
        let seqs = lockorder::extract(rel_name, "fixture", &lexed, &skip);
        let (classes, edges, cycles) = lockorder::analyze(&seqs);
        report.lock_classes = classes;
        report.lock_edges = edges;
        report.violations.extend(cycles);
    }
    report
}

fn rel_display(rel: &Path) -> String {
    rel.iter().filter_map(|c| c.to_str()).collect::<Vec<_>>().join("/")
}

fn crate_of(rel: &Path) -> String {
    let comps: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    match comps.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        _ => "root".to_string(),
    }
}

/// Recursively collects `.rs` files under `dir`, skipping excluded and
/// hidden directories. Deterministic: entries are sorted.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name.starts_with('.') || exclude.iter().any(|x| x == name) {
                continue;
            }
            collect_rs_files(root, &path, exclude, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}
