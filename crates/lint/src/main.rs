//! `detlint` CLI: lints the workspace, prints the human report, optionally
//! writes the JSONL report, and exits nonzero on any unsuppressed finding.
//!
//! ```text
//! detlint [--root <dir>] [--json <path>] [--callgraph <path>] [--quiet]
//! ```
//!
//! `--callgraph` writes the interprocedural pass's call graph and
//! per-coroutine-root stack bounds as JSONL; with `--json` but no
//! `--callgraph`, it defaults to `detlint-callgraph.jsonl` next to the
//! `--json` path.
//!
//! With no `--root`, the workspace root is found by walking up from the
//! current directory to the first `detlint.toml` (falling back to the
//! crate's own ancestor when run via `cargo run -p redcr-lint`).

use std::path::PathBuf;
use std::process::ExitCode;

fn find_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(r) = explicit {
        return Some(r);
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("detlint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            break;
        }
    }
    // `cargo run -p redcr-lint` from anywhere: crates/lint/../..
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.parent()?.parent()?;
    root.join("detlint.toml").is_file().then(|| root.to_path_buf())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = None;
    let mut json_path: Option<PathBuf> = None;
    let mut callgraph_path: Option<PathBuf> = None;
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_path = args.next().map(PathBuf::from),
            "--callgraph" => callgraph_path = args.next().map(PathBuf::from),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: detlint [--root <dir>] [--json <path>] [--callgraph <path>] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = find_root(root) else {
        eprintln!("detlint: no detlint.toml found (use --root)");
        return ExitCode::from(2);
    };
    let report = match redcr_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_jsonl()) {
            eprintln!("detlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let callgraph_path = callgraph_path.or_else(|| {
        json_path.as_ref().map(|j| j.with_file_name("detlint-callgraph.jsonl"))
    });
    if let Some(path) = &callgraph_path {
        if let Err(e) = std::fs::write(path, report.callgraph.to_jsonl()) {
            eprintln!("detlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
