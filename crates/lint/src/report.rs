//! Lint findings and report rendering: human text and the repo's
//! established dependency-free JSONL.

use std::fmt::Write as _;

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id (`R1`…`R6`).
    pub rule: &'static str,
    /// Workspace-relative file path (slash-separated).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Advisory findings still require a fix or a reasoned suppression,
    /// but are labelled so readers know they encode a judgement call.
    pub advisory: bool,
    /// What was found, e.g. "`std::time::Instant` referenced".
    pub message: String,
    /// Why the pattern is hazardous in this domain.
    pub rationale: &'static str,
    /// `Some(reason)` when a well-formed suppression covers this finding.
    pub suppressed: Option<String>,
}

/// A suppression comment that matched no finding (stale), or one missing
/// its mandatory reason (malformed — suppresses nothing).
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// Workspace-relative file path.
    pub file: String,
    /// Line of the comment.
    pub line: u32,
    /// Rule it names.
    pub rule: String,
    /// True when the comment lacks a `reason = "…"`.
    pub missing_reason: bool,
}

/// One observed nested lock acquisition: `held` was locked when `acquired`
/// was taken.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock class already held (`crate::field`).
    pub held: String,
    /// Lock class acquired under it.
    pub acquired: String,
    /// Representative site.
    pub file: String,
    /// Line of the inner acquisition.
    pub line: u32,
    /// Enclosing function name.
    pub func: String,
}

/// Full lint report for a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, suppressed ones included.
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Stale or malformed suppressions.
    pub bad_suppressions: Vec<BadSuppression>,
    /// Count of suppressions that matched a finding (with reason).
    pub suppressions_used: usize,
    /// All distinct lock classes seen by the R5 pass.
    pub lock_classes: Vec<String>,
    /// Nested-acquisition edges observed (the inter-crate lock graph).
    pub lock_edges: Vec<LockEdge>,
}

impl Report {
    /// Findings not covered by a reasoned suppression.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.suppressed.is_none())
    }

    /// Whether the run should exit 0. Malformed suppressions (no reason)
    /// leave their finding unsuppressed, so they fail through that path;
    /// stale suppressions are reported but do not fail the run.
    pub fn is_clean(&self) -> bool {
        self.unsuppressed().next().is_none()
    }

    /// Human-readable rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in self.unsuppressed() {
            let sev = if v.advisory { "advisory" } else { "deny" };
            let _ = writeln!(
                out,
                "{}:{}: {} [{}] {}\n    rationale: {}",
                v.file, v.line, v.rule, sev, v.message, v.rationale
            );
        }
        for b in &self.bad_suppressions {
            if b.missing_reason {
                let _ = writeln!(
                    out,
                    "{}:{}: malformed detlint::allow({}) — missing `reason = \"…\"`; suppresses nothing",
                    b.file, b.line, b.rule
                );
            } else {
                let _ = writeln!(
                    out,
                    "{}:{}: stale detlint::allow({}) — matched no finding",
                    b.file, b.line, b.rule
                );
            }
        }
        let suppressed: Vec<&Violation> =
            self.violations.iter().filter(|v| v.suppressed.is_some()).collect();
        if !suppressed.is_empty() {
            let _ = writeln!(out, "suppressed findings ({}):", suppressed.len());
            for v in &suppressed {
                let _ = writeln!(
                    out,
                    "  {}:{}: {} — allowed: {}",
                    v.file,
                    v.line,
                    v.rule,
                    v.suppressed.as_deref().unwrap_or("")
                );
            }
        }
        let _ = writeln!(
            out,
            "lock graph: {} classes, {} nested acquisitions",
            self.lock_classes.len(),
            self.lock_edges.len()
        );
        for e in &self.lock_edges {
            let _ = writeln!(
                out,
                "  {} -> {} ({}:{} in {})",
                e.held, e.acquired, e.file, e.line, e.func
            );
        }
        let unsup = self.unsuppressed().count();
        let _ = writeln!(
            out,
            "detlint: {} files, {} findings ({} suppressed with reason), {} unsuppressed — {}",
            self.files_scanned,
            self.violations.len(),
            self.suppressions_used,
            unsup,
            if self.is_clean() { "OK" } else { "FAIL" }
        );
        out
    }

    /// JSONL rendering: one object per finding (suppressed included),
    /// then one object per lock edge, then a summary object.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(
                out,
                "{{\"kind\":\"violation\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"advisory\":{},\"suppressed\":{},\"reason\":{},\"message\":\"{}\",\"rationale\":\"{}\"}}",
                v.rule,
                esc(&v.file),
                v.line,
                v.advisory,
                v.suppressed.is_some(),
                match &v.suppressed {
                    Some(r) => format!("\"{}\"", esc(r)),
                    None => "null".to_string(),
                },
                esc(&v.message),
                esc(v.rationale),
            );
        }
        for e in &self.lock_edges {
            let _ = writeln!(
                out,
                "{{\"kind\":\"lock_edge\",\"held\":\"{}\",\"acquired\":\"{}\",\"file\":\"{}\",\"line\":{},\"fn\":\"{}\"}}",
                esc(&e.held),
                esc(&e.acquired),
                esc(&e.file),
                e.line,
                esc(&e.func),
            );
        }
        let _ = writeln!(
            out,
            "{{\"kind\":\"summary\",\"files\":{},\"findings\":{},\"suppressed\":{},\"unsuppressed\":{},\"lock_classes\":{},\"lock_edges\":{},\"clean\":{}}}",
            self.files_scanned,
            self.violations.len(),
            self.suppressions_used,
            self.unsuppressed().count(),
            self.lock_classes.len(),
            self.lock_edges.len(),
            self.is_clean(),
        );
        out
    }
}

/// Minimal JSON string escaping (mirrors `trace::jsonl`).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_escapes_and_summarizes() {
        let mut r = Report { files_scanned: 1, ..Report::default() };
        r.violations.push(Violation {
            rule: "R1",
            file: "a\"b.rs".into(),
            line: 3,
            advisory: false,
            message: "x".into(),
            rationale: "y",
            suppressed: None,
        });
        let j = r.to_jsonl();
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.lines().last().unwrap().contains("\"clean\":false"));
        assert!(!r.is_clean());
    }

    #[test]
    fn suppressed_findings_are_clean() {
        let mut r = Report::default();
        r.violations.push(Violation {
            rule: "R4",
            file: "f.rs".into(),
            line: 1,
            advisory: false,
            message: "m".into(),
            rationale: "r",
            suppressed: Some("invariant".into()),
        });
        assert!(r.is_clean());
        assert!(r.render_human().contains("allowed: invariant"));
    }
}
