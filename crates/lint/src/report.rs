//! Lint findings and report rendering: human text and the repo's
//! established dependency-free JSONL.

use std::fmt::Write as _;

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id (`R1`…`R10`).
    pub rule: &'static str,
    /// Workspace-relative file path (slash-separated).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Advisory findings still require a fix or a reasoned suppression,
    /// but are labelled so readers know they encode a judgement call.
    pub advisory: bool,
    /// What was found, e.g. "`std::time::Instant` referenced".
    pub message: String,
    /// Why the pattern is hazardous in this domain.
    pub rationale: &'static str,
    /// `Some(reason)` when a well-formed suppression covers this finding.
    pub suppressed: Option<String>,
}

/// A suppression comment that matched no finding (stale), one missing its
/// mandatory reason (malformed — suppresses nothing), or one naming a rule
/// id outside the registry (typo'd or retired — suppresses nothing and
/// fails the run).
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// Workspace-relative file path.
    pub file: String,
    /// Line of the comment.
    pub line: u32,
    /// Rule it names.
    pub rule: String,
    /// True when the comment lacks a `reason = "…"`.
    pub missing_reason: bool,
    /// True when the named rule id is not in the registry.
    pub unknown_rule: bool,
}

/// One observed nested lock acquisition: `held` was locked when `acquired`
/// was taken.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock class already held (`crate::field`).
    pub held: String,
    /// Lock class acquired under it.
    pub acquired: String,
    /// Representative site.
    pub file: String,
    /// Line of the inner acquisition.
    pub line: u32,
    /// Enclosing function name.
    pub func: String,
}

/// Full lint report for a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, suppressed ones included.
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Stale or malformed suppressions.
    pub bad_suppressions: Vec<BadSuppression>,
    /// Count of suppressions that matched a finding (with reason).
    pub suppressions_used: usize,
    /// All distinct lock classes seen by the R5 pass.
    pub lock_classes: Vec<String>,
    /// Nested-acquisition edges observed (the inter-crate lock graph).
    pub lock_edges: Vec<LockEdge>,
    /// The interprocedural pass's call graph and per-root stack bounds,
    /// emitted as a sibling JSONL artifact by the CLI.
    pub callgraph: CallGraph,
}

/// One resolved caller → callee edge in the whole-workspace call graph.
#[derive(Debug, Clone)]
pub struct CallEdge {
    /// Caller function (qualified `Type::method` where known).
    pub caller: String,
    /// Callee function.
    pub callee: String,
    /// File containing the call site.
    pub file: String,
    /// Line of the call site.
    pub line: u32,
}

/// The R9 stack bound for one coroutine root.
#[derive(Debug, Clone)]
pub struct RootBound {
    /// Root name (a closure label like `World::run::{closure@197}`).
    pub root: String,
    /// File defining the root.
    pub file: String,
    /// Line of the closure literal.
    pub line: u32,
    /// Estimated worst-case stack bytes along the deepest call chain
    /// (meaningless when `recursive`).
    pub bound_bytes: u64,
    /// Frames on that deepest chain.
    pub frames: u32,
    /// True when the root can reach a recursion cycle: the static bound
    /// does not exist and only the runtime canary guards the stack.
    pub recursive: bool,
    /// The deepest chain, root first.
    pub path: Vec<String>,
}

/// Call-graph artifact: what the interprocedural pass saw. Rendered as
/// its own JSONL file (`detlint-callgraph.jsonl`) so CI can archive the
/// stack bounds next to the findings report.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Functions (free, methods, and closure literals) parsed.
    pub functions: usize,
    /// Resolved workspace-internal call edges, deduplicated.
    pub edges: Vec<CallEdge>,
    /// One entry per coroutine root with its R9 stack bound.
    pub roots: Vec<RootBound>,
}

impl CallGraph {
    /// Worst root bound in bytes (0 when there are no roots); recursive
    /// roots are excluded — they have no static bound.
    pub fn max_bound_bytes(&self) -> u64 {
        self.roots.iter().filter(|r| !r.recursive).map(|r| r.bound_bytes).max().unwrap_or(0)
    }

    /// JSONL rendering: one object per edge, one per root, then a summary.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.edges {
            let _ = writeln!(
                out,
                "{{\"kind\":\"call_edge\",\"caller\":\"{}\",\"callee\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
                esc(&e.caller),
                esc(&e.callee),
                esc(&e.file),
                e.line,
            );
        }
        for r in &self.roots {
            let path: Vec<String> = r.path.iter().map(|p| format!("\"{}\"", esc(p))).collect();
            let _ = writeln!(
                out,
                "{{\"kind\":\"root\",\"root\":\"{}\",\"file\":\"{}\",\"line\":{},\"bound_bytes\":{},\"frames\":{},\"recursive\":{},\"path\":[{}]}}",
                esc(&r.root),
                esc(&r.file),
                r.line,
                r.bound_bytes,
                r.frames,
                r.recursive,
                path.join(","),
            );
        }
        let _ = writeln!(
            out,
            "{{\"kind\":\"summary\",\"functions\":{},\"edges\":{},\"roots\":{},\"max_bound_bytes\":{}}}",
            self.functions,
            self.edges.len(),
            self.roots.len(),
            self.max_bound_bytes(),
        );
        out
    }
}

impl Report {
    /// Findings not covered by a reasoned suppression.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.suppressed.is_none())
    }

    /// Whether the run should exit 0. Malformed suppressions (no reason)
    /// leave their finding unsuppressed, so they fail through that path;
    /// stale suppressions are reported but do not fail the run; an allow
    /// naming an unknown rule id is a definite typo and fails directly.
    pub fn is_clean(&self) -> bool {
        self.unsuppressed().next().is_none()
            && !self.bad_suppressions.iter().any(|b| b.unknown_rule)
    }

    /// Human-readable rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in self.unsuppressed() {
            let sev = if v.advisory { "advisory" } else { "deny" };
            let _ = writeln!(
                out,
                "{}:{}: {} [{}] {}\n    rationale: {}",
                v.file, v.line, v.rule, sev, v.message, v.rationale
            );
        }
        for b in &self.bad_suppressions {
            if b.unknown_rule {
                let _ = writeln!(
                    out,
                    "{}:{}: unknown rule `{}` in detlint::allow — not in the registry; suppresses nothing",
                    b.file, b.line, b.rule
                );
            } else if b.missing_reason {
                let _ = writeln!(
                    out,
                    "{}:{}: malformed detlint::allow({}) — missing `reason = \"…\"`; suppresses nothing",
                    b.file, b.line, b.rule
                );
            } else {
                let _ = writeln!(
                    out,
                    "{}:{}: stale detlint::allow({}) — matched no finding",
                    b.file, b.line, b.rule
                );
            }
        }
        let suppressed: Vec<&Violation> =
            self.violations.iter().filter(|v| v.suppressed.is_some()).collect();
        if !suppressed.is_empty() {
            let _ = writeln!(out, "suppressed findings ({}):", suppressed.len());
            for v in &suppressed {
                let _ = writeln!(
                    out,
                    "  {}:{}: {} — allowed: {}",
                    v.file,
                    v.line,
                    v.rule,
                    v.suppressed.as_deref().unwrap_or("")
                );
            }
        }
        let _ = writeln!(
            out,
            "lock graph: {} classes, {} nested acquisitions",
            self.lock_classes.len(),
            self.lock_edges.len()
        );
        for e in &self.lock_edges {
            let _ = writeln!(
                out,
                "  {} -> {} ({}:{} in {})",
                e.held, e.acquired, e.file, e.line, e.func
            );
        }
        let _ = writeln!(
            out,
            "call graph: {} functions, {} edges, {} coroutine roots (max stack bound {} bytes)",
            self.callgraph.functions,
            self.callgraph.edges.len(),
            self.callgraph.roots.len(),
            self.callgraph.max_bound_bytes(),
        );
        let unsup = self.unsuppressed().count();
        let _ = writeln!(
            out,
            "detlint: {} files, {} findings ({} suppressed with reason), {} unsuppressed — {}",
            self.files_scanned,
            self.violations.len(),
            self.suppressions_used,
            unsup,
            if self.is_clean() { "OK" } else { "FAIL" }
        );
        out
    }

    /// JSONL rendering: one object per finding (suppressed included),
    /// then one object per lock edge, then a summary object.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(
                out,
                "{{\"kind\":\"violation\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"advisory\":{},\"suppressed\":{},\"reason\":{},\"message\":\"{}\",\"rationale\":\"{}\"}}",
                v.rule,
                esc(&v.file),
                v.line,
                v.advisory,
                v.suppressed.is_some(),
                match &v.suppressed {
                    Some(r) => format!("\"{}\"", esc(r)),
                    None => "null".to_string(),
                },
                esc(&v.message),
                esc(v.rationale),
            );
        }
        for e in &self.lock_edges {
            let _ = writeln!(
                out,
                "{{\"kind\":\"lock_edge\",\"held\":\"{}\",\"acquired\":\"{}\",\"file\":\"{}\",\"line\":{},\"fn\":\"{}\"}}",
                esc(&e.held),
                esc(&e.acquired),
                esc(&e.file),
                e.line,
                esc(&e.func),
            );
        }
        for b in &self.bad_suppressions {
            let _ = writeln!(
                out,
                "{{\"kind\":\"bad_suppression\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"missing_reason\":{},\"unknown_rule\":{}}}",
                esc(&b.rule),
                esc(&b.file),
                b.line,
                b.missing_reason,
                b.unknown_rule,
            );
        }
        // `rules` lists the ids with live unsuppressed findings, so CI can
        // grep one line to gate on specific rules.
        let mut live: Vec<&str> = self.unsuppressed().map(|v| v.rule).collect();
        live.sort_unstable();
        live.dedup();
        let rules: Vec<String> = live.iter().map(|r| format!("\"{r}\"")).collect();
        let _ = writeln!(
            out,
            "{{\"kind\":\"summary\",\"files\":{},\"findings\":{},\"suppressed\":{},\"unsuppressed\":{},\"rules\":[{}],\"bad_suppressions\":{},\"lock_classes\":{},\"lock_edges\":{},\"coroutine_roots\":{},\"max_stack_bound_bytes\":{},\"clean\":{}}}",
            self.files_scanned,
            self.violations.len(),
            self.suppressions_used,
            self.unsuppressed().count(),
            rules.join(","),
            self.bad_suppressions.len(),
            self.lock_classes.len(),
            self.lock_edges.len(),
            self.callgraph.roots.len(),
            self.callgraph.max_bound_bytes(),
            self.is_clean(),
        );
        out
    }
}

/// Minimal JSON string escaping (mirrors `trace::jsonl`).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_escapes_and_summarizes() {
        let mut r = Report { files_scanned: 1, ..Report::default() };
        r.violations.push(Violation {
            rule: "R1",
            file: "a\"b.rs".into(),
            line: 3,
            advisory: false,
            message: "x".into(),
            rationale: "y",
            suppressed: None,
        });
        let j = r.to_jsonl();
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.lines().last().unwrap().contains("\"clean\":false"));
        assert!(!r.is_clean());
    }

    #[test]
    fn suppressed_findings_are_clean() {
        let mut r = Report::default();
        r.violations.push(Violation {
            rule: "R4",
            file: "f.rs".into(),
            line: 1,
            advisory: false,
            message: "m".into(),
            rationale: "r",
            suppressed: Some("invariant".into()),
        });
        assert!(r.is_clean());
        assert!(r.render_human().contains("allowed: invariant"));
    }
}
