//! `detlint.toml` configuration: the domain → crate mapping and scan
//! exclusions, parsed with a minimal hand-rolled TOML-subset reader (the
//! linter is dependency-free by design).
//!
//! Supported syntax: `[section]` headers, `key = "string"`,
//! `key = ["a", "b"]`, and `key = <integer>` — with `#` comments. That is
//! the whole subset the config needs; anything else is a parse error.

use std::collections::BTreeMap;
use std::path::Path;

/// Which rule set applies to a file, derived from its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Rank-thread hot path (`simmpi`, `redundancy`): all virtual-time
    /// rules plus the no-panic rule R4.
    Hot,
    /// Virtual-time domain: determinism rules R1–R3 and the atomics
    /// advisory R6; participates in the lock-order graph R5.
    Virtual,
    /// The one domain allowed to read wall clocks (`bench`): exempt from
    /// R1–R4/R6 (it measures the host, not the simulation).
    Wallclock,
    /// Repo tooling (the linter itself): exempt from file rules.
    Tooling,
    /// Test / example / fixture code: exempt (the determinism contract
    /// binds the library, not the harness poking it).
    Test,
}

impl Domain {
    /// Parses the domain name used in `detlint.toml`.
    pub fn parse(s: &str) -> Option<Domain> {
        match s {
            "hot" => Some(Domain::Hot),
            "virtual" => Some(Domain::Virtual),
            "wallclock" => Some(Domain::Wallclock),
            "tooling" => Some(Domain::Tooling),
            "test" => Some(Domain::Test),
            _ => None,
        }
    }

    /// Name as written in config / reports.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Hot => "hot",
            Domain::Virtual => "virtual",
            Domain::Wallclock => "wallclock",
            Domain::Tooling => "tooling",
            Domain::Test => "test",
        }
    }
}

/// Parsed `detlint.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory name (or `root` for the top-level `src/`) → domain.
    pub crate_domains: BTreeMap<String, Domain>,
    /// Directory names excluded from the scan entirely.
    pub exclude: Vec<String>,
    /// R9 budget in KiB: the per-coroutine-root static stack bound the
    /// workspace certifies. Tied to the runtime default `REDCR_STACK_KB`.
    pub stack_budget_kb: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            crate_domains: BTreeMap::new(),
            exclude: vec!["vendor".into(), "target".into(), ".git".into()],
            stack_budget_kb: 128,
        }
    }
}

impl Config {
    /// Parses config text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside
    /// the supported TOML subset or an unknown domain name.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {}: unterminated section header", lineno + 1))?;
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let key = key.trim();
            let value = value.trim();
            match section.as_str() {
                "domains" => {
                    let dom = parse_string(value)
                        .ok_or_else(|| format!("line {}: expected a quoted domain", lineno + 1))?;
                    let dom = Domain::parse(&dom)
                        .ok_or_else(|| format!("line {}: unknown domain `{dom}`", lineno + 1))?;
                    cfg.crate_domains.insert(key.to_string(), dom);
                }
                "scan" if key == "exclude" => {
                    cfg.exclude = parse_string_array(value).ok_or_else(|| {
                        format!("line {}: expected an array of strings", lineno + 1)
                    })?;
                }
                "stack_budget" if key == "budget_kb" => {
                    cfg.stack_budget_kb = value.parse::<u64>().map_err(|_| {
                        format!("line {}: expected an integer KiB budget", lineno + 1)
                    })?;
                }
                other => {
                    return Err(format!("line {}: unknown section/key `{other}.{key}`", lineno + 1))
                }
            }
        }
        Ok(cfg)
    }

    /// Loads and parses `path`.
    ///
    /// # Errors
    ///
    /// I/O and parse errors as a message.
    pub fn load(path: &Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Maps a workspace-relative path to its domain.
    ///
    /// Any path containing a `tests`, `benches`, `examples`, or `fixtures`
    /// component is test-domain regardless of crate; `crates/<name>/src`
    /// resolves through the config; the top-level `src/` is the `root`
    /// entry (virtual-time by default — the conservative choice).
    pub fn domain_for(&self, rel: &Path) -> Domain {
        let comps: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
        if comps.iter().any(|c| matches!(*c, "tests" | "benches" | "examples" | "fixtures")) {
            return Domain::Test;
        }
        let crate_key = match comps.as_slice() {
            ["crates", name, ..] => *name,
            ["src", ..] => "root",
            _ => return Domain::Test,
        };
        self.crate_domains.get(crate_key).copied().unwrap_or(Domain::Virtual)
    }
}

fn strip_comment(line: &str) -> &str {
    // Good enough for this config: `#` never appears inside our strings.
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_string(value: &str) -> Option<String> {
    let v = value.trim();
    let v = v.strip_prefix('"')?.strip_suffix('"')?;
    Some(v.to_string())
}

fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let v = value.trim().strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for item in v.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const SAMPLE: &str = r#"
# comment
[domains]
simmpi = "hot"
bench = "wallclock"
root = "virtual"

[scan]
exclude = ["vendor", "target"]

[stack_budget]
budget_kb = 96
"#;

    #[test]
    fn parses_sample() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(cfg.crate_domains["simmpi"], Domain::Hot);
        assert_eq!(cfg.crate_domains["bench"], Domain::Wallclock);
        assert_eq!(cfg.exclude, vec!["vendor", "target"]);
        assert_eq!(cfg.stack_budget_kb, 96);
    }

    #[test]
    fn stack_budget_defaults_and_rejects_non_integer() {
        assert_eq!(Config::parse("").unwrap().stack_budget_kb, 128);
        assert!(Config::parse("[stack_budget]\nbudget_kb = \"lots\"\n").is_err());
    }

    #[test]
    fn domain_resolution() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(cfg.domain_for(&PathBuf::from("crates/simmpi/src/comm.rs")), Domain::Hot);
        assert_eq!(cfg.domain_for(&PathBuf::from("crates/simmpi/tests/runtime.rs")), Domain::Test);
        assert_eq!(
            cfg.domain_for(&PathBuf::from("crates/bench/src/runtime.rs")),
            Domain::Wallclock
        );
        // Unlisted crates default to the conservative virtual-time domain.
        assert_eq!(cfg.domain_for(&PathBuf::from("crates/newcrate/src/lib.rs")), Domain::Virtual);
        assert_eq!(cfg.domain_for(&PathBuf::from("src/lib.rs")), Domain::Virtual);
        assert_eq!(cfg.domain_for(&PathBuf::from("tests/full_stack.rs")), Domain::Test);
    }

    #[test]
    fn rejects_unknown_domain() {
        assert!(Config::parse("[domains]\nx = \"warp\"\n").is_err());
        assert!(Config::parse("[mystery]\nx = 1\n").is_err());
    }
}
