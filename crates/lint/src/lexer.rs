//! A hand-rolled Rust lexer: just enough tokenization for detlint's rules.
//!
//! The lexer understands line comments, *nested* block comments, string
//! literals (with escapes), raw strings (`r"…"`, `r#"…"#`, any hash
//! count), byte strings, char literals, and lifetimes — so rule text that
//! appears inside a literal or a comment can never trigger a rule.
//! Everything else is reduced to identifiers, literals, and single-char
//! punctuation; that is all the rule matchers need.
//!
//! Suppression comments (`// detlint::allow(R2, reason = "…")`) are
//! recognized here, because only the lexer knows what is a comment.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `use`, `HashMap`, …).
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// Any literal (string, raw string, char, byte, number). The source
    /// text is kept for *numeric* literals only (the stack-budget pass R9
    /// reads array lengths); string/char/byte contents are discarded as
    /// an empty payload — literal text can never trigger a rule.
    Lit(String),
}

/// A token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// A `// detlint::allow(<rule>, reason = "…")` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment appears on. The suppression applies to findings on
    /// this line (trailing style) and on the next line (preceding style).
    pub line: u32,
    /// Rule id, e.g. `R2`.
    pub rule: String,
    /// The mandatory written justification. A suppression without a reason
    /// is malformed and suppresses nothing.
    pub reason: Option<String>,
}

/// Output of [`lex`]: the token stream plus any suppression comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Suppression comments in source order.
    pub suppressions: Vec<Suppression>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and suppressions. Never panics on malformed
/// input: unterminated literals simply run to end of file.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                if let Some(s) = parse_suppression(&text, line) {
                    out.suppressions.push(s);
                }
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Nested block comment.
                let mut depth = 1u32;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let lit_line = line;
                i = lex_string(&chars, i, &mut line);
                out.tokens.push(Token { tok: Tok::Lit(String::new()), line: lit_line });
            }
            'r' | 'b' => {
                let lit_line = line;
                if let Some(ni) = try_lex_prefixed_literal(&chars, i, &mut line) {
                    out.tokens.push(Token { tok: Tok::Lit(String::new()), line: lit_line });
                    i = ni;
                } else {
                    i = lex_ident(&chars, i, line, &mut out.tokens);
                }
            }
            '\'' => {
                // Lifetime or char literal.
                if i + 1 < n && is_ident_start(chars[i + 1]) && chars[i + 1] != '\\' {
                    // `'a` could still be the char literal `'a'`: peek past
                    // the identifier for a closing quote.
                    let mut j = i + 1;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    if j < n && chars[j] == '\'' && j == i + 2 {
                        // Exactly one ident char then a quote: char literal.
                        out.tokens.push(Token { tok: Tok::Lit(String::new()), line });
                        i = j + 1;
                    } else {
                        // Lifetime: consume, emit nothing.
                        i = j;
                    }
                } else {
                    // Escaped or symbolic char literal: `'\n'`, `'\u{1F600}'`,
                    // `'('`, …
                    let lit_line = line;
                    let mut j = i + 1;
                    if j < n && chars[j] == '\\' {
                        j += 2; // skip backslash + escape head
                        while j < n && chars[j] != '\'' {
                            if chars[j] == '\n' {
                                line += 1;
                            }
                            j += 1;
                        }
                    } else if j < n {
                        if chars[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    if j < n && chars[j] == '\'' {
                        j += 1;
                    }
                    out.tokens.push(Token { tok: Tok::Lit(String::new()), line: lit_line });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let lit_line = line;
                let mut j = i + 1;
                while j < n
                    && (is_ident_continue(chars[j])
                        || (chars[j] == '.' && j + 1 < n && chars[j + 1].is_ascii_digit()))
                {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                out.tokens.push(Token { tok: Tok::Lit(text), line: lit_line });
                i = j;
            }
            c if is_ident_start(c) => {
                i = lex_ident(&chars, i, line, &mut out.tokens);
            }
            other => {
                out.tokens.push(Token { tok: Tok::Punct(other), line });
                i += 1;
            }
        }
    }
    out
}

fn lex_ident(chars: &[char], start: usize, line: u32, tokens: &mut Vec<Token>) -> usize {
    let mut j = start + 1;
    while j < chars.len() && is_ident_continue(chars[j]) {
        j += 1;
    }
    let name: String = chars[start..j].iter().collect();
    tokens.push(Token { tok: Tok::Ident(name), line });
    j
}

/// Lexes a normal (escaped) string starting at the opening quote; returns
/// the index just past the closing quote.
fn lex_string(chars: &[char], start: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut i = start + 1;
    while i < n {
        match chars[i] {
            '\\' => i += 2, // escape (incl. `\"`); `\<newline>` continuation
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Handles `b"…"`, `b'…'`, `r"…"`, `r#"…"#`, `br#"…"#` (any hash count).
/// Returns the index past the literal, or `None` if `start` is actually an
/// identifier beginning with `r`/`b` (including raw identifiers `r#foo`).
fn try_lex_prefixed_literal(chars: &[char], start: usize, line: &mut u32) -> Option<usize> {
    let n = chars.len();
    let mut i = start;
    if chars[i] == 'b' {
        i += 1;
        if i < n && chars[i] == '\'' {
            // Byte char `b'x'` / `b'\n'`.
            let mut j = i + 1;
            if j < n && chars[j] == '\\' {
                j += 2;
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
            } else if j < n {
                j += 1;
            }
            if j < n && chars[j] == '\'' {
                j += 1;
            }
            return Some(j);
        }
        if i < n && chars[i] == '"' {
            return Some(lex_string(chars, i, line));
        }
    }
    if chars[start] == 'r' {
        i = start + 1;
    } else if chars[start] == 'b' && start + 1 < n && chars[start + 1] == 'r' {
        i = start + 2;
    } else {
        return None;
    }
    // Count hashes then require a quote for a raw string.
    let mut hashes = 0usize;
    while i < n && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || chars[i] != '"' {
        return None; // raw identifier like `r#fn`, or plain ident `rank`
    }
    // Raw string body: ends at `"` followed by `hashes` hashes.
    i += 1;
    while i < n {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if chars[i] == '"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return Some(i + 1 + hashes);
            }
        }
        i += 1;
    }
    Some(i)
}

/// Parses `detlint::allow(<rule>[, reason = "…"])` out of a comment body.
fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    const NEEDLE: &str = "detlint::allow(";
    let idx = comment.find(NEEDLE)?;
    let after = &comment[idx + NEEDLE.len()..];
    let rule_end = after.find([',', ')'])?;
    let rule = after[..rule_end].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    let mut reason = None;
    let tail = &after[rule_end..];
    if let Some(rest) = tail.strip_prefix(',') {
        let rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix("reason") {
            let r = r.trim_start();
            if let Some(r) = r.strip_prefix('=') {
                let r = r.trim_start();
                if let Some(r) = r.strip_prefix('"') {
                    if let Some(end) = r.find('"') {
                        let text = &r[..end];
                        if !text.trim().is_empty() {
                            reason = Some(text.to_string());
                        }
                    }
                }
            }
        }
    }
    Some(Suppression { line, rule, reason })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_contents() {
        let src = r##"
            // Instant::now() in a line comment
            /* HashMap /* nested Instant */ iteration */
            let a = "Instant::now()";
            let b = r#"std::time::Instant"#;
            let c = 'I';
            let d = b"Instant";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()), "got {ids:?}");
        assert!(!ids.contains(&"HashMap".to_string()));
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c", "let", "d"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(ids, vec!["fn", "f", "x", "str", "str", "x"]);
    }

    #[test]
    fn line_numbers_track_multiline_literals() {
        let src = "let s = \"line\none\";\nInstant";
        let lexed = lex(src);
        let last = lexed.tokens.last().unwrap();
        assert_eq!(last.tok, Tok::Ident("Instant".into()));
        assert_eq!(last.line, 3);
    }

    #[test]
    fn suppression_parsed_with_reason() {
        let lexed =
            lex("// detlint::allow(R2, reason = \"order-independent: min over unique seq\")\nx");
        assert_eq!(lexed.suppressions.len(), 1);
        let s = &lexed.suppressions[0];
        assert_eq!(s.rule, "R2");
        assert_eq!(s.reason.as_deref(), Some("order-independent: min over unique seq"));
    }

    #[test]
    fn suppression_without_reason_is_flagged_malformed() {
        let lexed = lex("// detlint::allow(R4)\n");
        assert_eq!(lexed.suppressions.len(), 1);
        assert!(lexed.suppressions[0].reason.is_none());
    }

    #[test]
    fn suppression_inside_string_is_ignored() {
        let lexed = lex("let s = \"// detlint::allow(R1, reason = \\\"nope\\\")\";");
        assert!(lexed.suppressions.is_empty());
    }

    #[test]
    fn raw_hash_identifier_is_not_a_raw_string() {
        let ids = idents("let r#fn = rank; br2");
        assert!(ids.contains(&"rank".to_string()));
        assert!(ids.contains(&"br2".to_string()));
    }
}
