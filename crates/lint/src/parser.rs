//! Recursive-descent item/expression parser: turns the token stream into
//! a lightweight per-function AST for the interprocedural rules R7–R10.
//!
//! For every `fn` item (and every closure literal, which becomes a
//! synthetic `outer::{closure@LINE}` function) the parser records:
//!
//! * every **call site** — path calls (`a::b::f(…)`), method calls
//!   (`x.f(…)`), and calls through local bindings / parameters
//!   (`f(…)` where `f` is a local — an *unknown callee*);
//! * the **lock guards live** at each call site, tracked with the same
//!   `.lock()` detection the R5 lock-order pass uses (guards end at
//!   `drop(g)` or at their scope's closing brace);
//! * the enclosing **loops** (`loop` / `while` / `for`) of each call, for
//!   the non-cooperative-spin rule R10;
//! * a **frame-size estimate** for the stack-budget rule R9: a fixed base
//!   per frame plus a slot per local/parameter plus the byte size of
//!   by-value arrays (`[T; N]` types and `[expr; N]` literals).
//!
//! Soundness caveats (documented in DESIGN §4k): macros are not expanded
//! (calls *inside* macro arguments are still seen; calls *generated* by a
//! macro body are not); trait-method calls resolve by method name across
//! every impl (over-approximation); calls through function values are
//! unknown callees (under-approximation, surfaced as advisories by R7);
//! frame sizes are estimates, not ABI truth.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Domain;
use crate::lexer::{Lexed, Tok, Token};
use crate::rules;

/// Fixed per-frame overhead estimate: return address, saved registers,
/// alignment and spill slack.
pub const FRAME_BASE_BYTES: u64 = 128;
/// Estimated bytes per scalar local or by-value parameter (most are a
/// word or two; 16 covers fat pointers and small aggregates).
pub const LOCAL_SLOT_BYTES: u64 = 16;

/// All parsed functions across the workspace plus per-file import maps.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Every function and closure, in file order.
    pub functions: Vec<FnDef>,
    /// File → (local alias → full `use` path) for call resolution.
    pub file_aliases: BTreeMap<String, BTreeMap<String, String>>,
}

/// One parsed function or closure.
#[derive(Debug)]
pub struct FnDef {
    /// `f`, `Type::f`, or `outer::{closure@LINE}`.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// Crate directory name (`simmpi`, …) or `root`.
    pub crate_name: String,
    /// Domain of the file (only Hot/Virtual files are parsed). Kept for
    /// artifact consumers even though no rule branches on it yet.
    #[allow(dead_code)]
    pub domain: Domain,
    /// 1-based line of the `fn` keyword / closure's `|`.
    pub line: u32,
    /// R9 frame estimate in bytes.
    pub frame_bytes: u64,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Loops in body order.
    pub loops: Vec<LoopInfo>,
    /// Global index of the enclosing function, for closures. Kept for
    /// artifact consumers even though no rule branches on it yet.
    #[allow(dead_code)]
    pub parent: Option<usize>,
    /// Last path/method segment of the call this closure literal is an
    /// argument of (`run_batch`, `map`, …), if any.
    pub passed_to: Option<String>,
    /// True for closure literals.
    pub is_closure: bool,
    /// False for bodyless trait-method declarations (`fn m(…);`): a call
    /// resolving only to declarations is a trait-dispatch site, and the
    /// resolver widens it to every same-named impl.
    pub has_body: bool,
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// What is being called.
    pub callee: Callee,
    /// 1-based line of the callee token.
    pub line: u32,
    /// Lock classes (`crate::field`) held when the call happens.
    pub guards: Vec<String>,
    /// Indices into [`FnDef::loops`] of every enclosing loop, outermost
    /// first.
    pub loops: Vec<usize>,
}

/// Call-site classification.
#[derive(Debug)]
pub enum Callee {
    /// `a::b::f(…)` — path segments as written (aliases unresolved).
    Path(Vec<String>),
    /// `recv.f(…)` — method name plus the receiver's last identifier.
    Method { name: String, receiver: Option<String> },
    /// `f(…)` where `f` is a local binding or parameter: unknown callee.
    Dynamic(String),
    /// A closure literal defined here (global function index). Modeled as
    /// a call edge: most closures run within their definer's dynamic
    /// extent (iterator adapters, wakers); spawner arguments are instead
    /// promoted to coroutine roots by the call-graph pass. Not an actual
    /// invocation — R7 ignores the definition site's guards.
    Closure(usize),
    /// `f(…)` where `f` is a local bound to a closure literal: a real
    /// invocation of that closure (global function index).
    BoundClosure(usize),
}

/// One `loop` / `while` / `for` in a body.
#[derive(Debug)]
pub struct LoopInfo {
    /// Loop flavor; `for` loops are exempt from R10 (bounded by their
    /// iterator).
    pub kind: LoopKind,
    /// 1-based line of the loop keyword.
    pub line: u32,
}

/// Loop flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `loop { … }`
    Loop,
    /// `while cond { … }` / `while let … { … }`
    While,
    /// `for pat in iter { … }`
    For,
}

/// Words that look like idents before `(` but never name a callee.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "fn", "let",
    "ref", "mut", "break", "continue", "unsafe", "where", "impl", "dyn", "box", "use", "pub",
    "const", "static", "struct", "enum", "trait", "type", "mod", "self", "Self", "super",
    "crate", "await", "async",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

fn ident_at<'t>(toks: &'t [Token], i: usize) -> Option<&'t str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Parses one lexed file into `ws`. Only Hot/Virtual files should be fed
/// here; test-masked tokens are skipped entirely.
pub fn parse_file(
    ws: &mut Workspace,
    file: &str,
    crate_name: &str,
    domain: Domain,
    lexed: &Lexed,
    skip: &[bool],
) {
    let toks = &lexed.tokens;
    let (imports, _in_use) = rules::parse_uses(toks);
    let mut aliases = BTreeMap::new();
    for imp in &imports {
        aliases.insert(imp.alias.clone(), imp.path.join("::"));
    }
    ws.file_aliases.insert(file.to_string(), aliases);

    let owner_spans = find_owner_spans(toks);

    let mut i = 0usize;
    while i < toks.len() {
        if skip.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        if ident_at(toks, i) == Some("fn") {
            if let Some(sig) = parse_fn_signature(toks, i) {
                let type_prefix = owner_spans
                    .iter()
                    .find(|(start, end, _)| *start < i && i < *end)
                    .map(|(_, _, name)| name.clone());
                let name = match &type_prefix {
                    Some(t) => format!("{t}::{}", sig.name),
                    None => sig.name.clone(),
                };
                let idx = ws.functions.len();
                ws.functions.push(FnDef {
                    name,
                    file: file.to_string(),
                    crate_name: crate_name.to_string(),
                    domain,
                    line: toks[i].line,
                    frame_bytes: FRAME_BASE_BYTES + sig.param_bytes,
                    calls: Vec::new(),
                    loops: Vec::new(),
                    parent: None,
                    passed_to: None,
                    is_closure: false,
                    has_body: sig.body.is_some(),
                });
                if let Some((open, close)) = sig.body {
                    let mut ctx = BodyCtx {
                        ws,
                        file,
                        crate_name,
                        domain,
                        fn_idx: idx,
                        locals: sig.params.iter().cloned().collect(),
                        closure_bindings: BTreeMap::new(),
                    };
                    parse_body(&mut ctx, toks, open + 1, close);
                    // Continue scanning *inside* the body too: nested
                    // `fn` items are their own definitions.
                    i = sig.sig_end;
                    continue;
                }
                i = sig.sig_end;
                continue;
            }
        }
        i += 1;
    }
}

/// `impl`/`trait` block spans with the owning type name, for qualifying
/// method names as `Type::method`.
fn find_owner_spans(toks: &[Token]) -> Vec<(usize, usize, String)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let kw = ident_at(toks, i);
        if kw != Some("impl") && kw != Some("trait") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip the generic parameter list of the item itself.
        if punct_at(toks, j, '<') {
            j = skip_angles(toks, j);
        }
        // Collect the head up to `{` / `where`, remembering the last
        // angle-depth-0 ident (and restarting after `for`, so
        // `impl Trait for Type` names `Type`).
        let mut name: Option<String> = None;
        let mut depth = 0i32;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('{') => break,
                Tok::Punct(';') => break, // `trait X: Y;`-ish degenerate
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    if !punct_at(toks, j.wrapping_sub(1), '-') {
                        depth -= 1;
                    }
                }
                Tok::Ident(s) if s == "where" && depth <= 0 => break,
                Tok::Ident(s) if s == "for" && depth <= 0 => name = None,
                Tok::Ident(s) if depth <= 0 && !is_keyword(s) => name = Some(s.clone()),
                _ => {}
            }
            j += 1;
        }
        if punct_at(toks, j, '{') {
            let close = rules::match_brace(toks, j);
            if let Some(n) = name {
                spans.push((j, close, n));
            }
            // Do not jump past the block: impls never nest, but scanning
            // linearly keeps nested modules simple.
        }
        i = j + 1;
    }
    spans
}

/// Skips a matched `<…>` group starting at `open`; `->` arrows inside do
/// not close angles.
fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                if !punct_at(toks, j.wrapping_sub(1), '-') {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            Tok::Punct('{') | Tok::Punct(';') => return j, // bail out: malformed
            _ => {}
        }
        j += 1;
    }
    j
}

struct FnSig {
    name: String,
    params: Vec<String>,
    param_bytes: u64,
    /// `(open, close)` of the body braces, `None` for bodyless decls.
    body: Option<(usize, usize)>,
    /// Index to resume scanning from (just past the body's `{`, so nested
    /// `fn`s are found; past the `;` for bodyless decls).
    sig_end: usize,
}

/// Parses a `fn` item's signature starting at the `fn` keyword.
fn parse_fn_signature(toks: &[Token], at: usize) -> Option<FnSig> {
    let name = ident_at(toks, at + 1)?.to_string();
    if is_keyword(&name) {
        return None;
    }
    let mut j = at + 2;
    if punct_at(toks, j, '<') {
        j = skip_angles(toks, j);
    }
    if !punct_at(toks, j, '(') {
        return None;
    }
    let params_close = match_paren(toks, j);
    let (params, param_bytes) = parse_params(toks, j + 1, params_close);
    // Scan to the body `{` or a terminating `;` (trait decl).
    let mut k = params_close + 1;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('{') => {
                let close = rules::match_brace(toks, k);
                return Some(FnSig {
                    name,
                    params,
                    param_bytes,
                    body: Some((k, close)),
                    sig_end: k + 1,
                });
            }
            Tok::Punct(';') => {
                return Some(FnSig { name, params, param_bytes, body: None, sig_end: k + 1 })
            }
            _ => k += 1,
        }
    }
    None
}

/// Finds the `)` matching the `(` at `open`.
fn match_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len() - 1
}

/// Parameter names (idents directly before a `:` at paren depth 1) and a
/// byte estimate: one slot per parameter plus by-value array types.
fn parse_params(toks: &[Token], start: usize, end: usize) -> (Vec<String>, u64) {
    let mut names = Vec::new();
    let mut bytes = 0u64;
    let mut depth = 1usize;
    let mut j = start;
    while j < end {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth = depth.saturating_sub(1),
            Tok::Ident(s) => {
                if depth == 1 && punct_at(toks, j + 1, ':') && !punct_at(toks, j + 2, ':') {
                    if s != "self" && !is_keyword(s) {
                        names.push(s.clone());
                        bytes += LOCAL_SLOT_BYTES;
                    }
                }
            }
            _ => {}
        }
        if punct_at(toks, j, '[') {
            if let Some((sz, after)) = array_type_bytes(toks, j, end) {
                bytes += sz;
                j = after;
                continue;
            }
        }
        j += 1;
    }
    (names, bytes)
}

/// If `open` starts a `[T; N]` / `[expr; N]` group with a numeric length,
/// returns its byte estimate and the index past the `]`.
fn array_type_bytes(toks: &[Token], open: usize, limit: usize) -> Option<(u64, usize)> {
    let mut depth = 0usize;
    let mut semi: Option<usize> = None;
    let mut close = open;
    let mut j = open;
    while j < limit.min(toks.len()) {
        match toks[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
            Tok::Punct(';') if depth == 1 => semi = Some(j),
            _ => {}
        }
        j += 1;
    }
    let semi = semi?;
    if close <= semi {
        return None;
    }
    // Length: a single numeric literal (or a named const — unknown, skip).
    let len = match &toks.get(semi + 1).map(|t| &t.tok) {
        Some(Tok::Lit(text)) if semi + 2 == close => parse_numeric(text)?,
        _ => return None,
    };
    // Element size from the first token after `[`: a primitive ident or a
    // literal with a suffix; anything else estimates a word.
    let elem = match &toks[open + 1].tok {
        Tok::Ident(s) => prim_size(s).unwrap_or(8),
        Tok::Lit(text) => lit_suffix_size(text),
        _ => 8,
    };
    Some((len.saturating_mul(elem), close + 1))
}

fn parse_numeric(text: &str) -> Option<u64> {
    let digits: String =
        text.chars().take_while(|c| c.is_ascii_digit() || *c == '_').filter(|c| *c != '_').collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

fn prim_size(name: &str) -> Option<u64> {
    match name {
        "u8" | "i8" | "bool" => Some(1),
        "u16" | "i16" => Some(2),
        "u32" | "i32" | "f32" | "char" => Some(4),
        "u64" | "i64" | "f64" | "usize" | "isize" => Some(8),
        "u128" | "i128" => Some(16),
        _ => None,
    }
}

fn lit_suffix_size(text: &str) -> u64 {
    for (suffix, size) in [
        ("u8", 1),
        ("i8", 1),
        ("u16", 2),
        ("i16", 2),
        ("u32", 4),
        ("i32", 4),
        ("f32", 4),
        ("u64", 8),
        ("i64", 8),
        ("f64", 8),
        ("usize", 8),
        ("isize", 8),
    ] {
        if text.ends_with(suffix) {
            return size;
        }
    }
    8
}

/// One live lock guard during the body walk.
struct Guard {
    binding: String,
    class: String,
    depth: u32,
}

struct BodyCtx<'a> {
    ws: &'a mut Workspace,
    file: &'a str,
    crate_name: &'a str,
    domain: Domain,
    fn_idx: usize,
    /// Locals and parameters in scope (fn-wide; shadowing is irrelevant
    /// for unknown-callee classification).
    locals: BTreeSet<String>,
    /// Locals bound directly to a closure literal (`let f = |…| …`):
    /// calls of `f(…)` resolve to that closure instead of an unknown
    /// callee.
    closure_bindings: BTreeMap<String, usize>,
}

/// Walks a body region `[start, end)`, populating the function at
/// `ctx.fn_idx` with calls, loops, guards, and frame bytes.
fn parse_body(ctx: &mut BodyCtx<'_>, toks: &[Token], start: usize, end: usize) {
    let mut guards: Vec<Guard> = Vec::new();
    // (loop index in FnDef.loops, brace depth at keyword, opened flag).
    let mut loop_stack: Vec<(usize, u32, bool)> = Vec::new();
    // Innermost-last call-paren stack: (paren index, Some(callee last
    // segment) for call parens).
    let mut paren_stack: Vec<Option<String>> = Vec::new();
    let mut depth = 0u32;

    let mut i = start;
    while i < end {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                if let Some(entry) = loop_stack.last_mut() {
                    if !entry.2 && depth == entry.1 + 1 {
                        entry.2 = true;
                    }
                }
                i += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                // A loop whose keyword sat at depth d has its body at
                // d+1: returning to depth d closes it.
                loop_stack.retain(|(_, d, opened)| !*opened || *d < depth);
                i += 1;
            }
            Tok::Punct('(') => {
                paren_stack.push(None);
                i += 1;
            }
            Tok::Punct(')') => {
                paren_stack.pop();
                i += 1;
            }
            Tok::Punct('|') => {
                if closure_starts_here(toks, i, start) {
                    i = parse_closure(ctx, toks, i, end, &guards, &loop_stack, &paren_stack);
                } else {
                    i += 1;
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                // Nested fn item: its own definition (found by the outer
                // scan); skip its span so its calls are not attributed
                // here.
                match parse_fn_signature(toks, i) {
                    Some(sig) => {
                        i = match sig.body {
                            Some((_, close)) => close + 1,
                            None => sig.sig_end,
                        }
                    }
                    None => i += 1,
                }
            }
            Tok::Ident(kw) if kw == "loop" || kw == "while" || kw == "for" => {
                let kind = match kw.as_str() {
                    "loop" => LoopKind::Loop,
                    "while" => LoopKind::While,
                    _ => LoopKind::For,
                };
                let li = ctx.ws.functions[ctx.fn_idx].loops.len();
                ctx.ws.functions[ctx.fn_idx].loops.push(LoopInfo { kind, line: toks[i].line });
                loop_stack.push((li, depth, false));
                i += 1;
            }
            Tok::Ident(kw) if kw == "let" => {
                i = handle_let(ctx, toks, i, end);
            }
            Tok::Ident(_) | Tok::Punct('.') => {
                if let Some(next) = try_call(
                    ctx,
                    toks,
                    i,
                    end,
                    &mut guards,
                    &loop_stack,
                    &mut paren_stack,
                    depth,
                ) {
                    i = next;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
}

/// Collects `let` pattern idents into scope (frame slots) and detects
/// array type annotations. Returns the index to continue from (just past
/// the pattern — the RHS is walked by the main loop).
fn handle_let(ctx: &mut BodyCtx<'_>, toks: &[Token], at: usize, end: usize) -> usize {
    let mut j = at + 1;
    let mut slots = 0u64;
    while j < end {
        match &toks[j].tok {
            Tok::Ident(s) if !is_keyword(s) => {
                // Locals are snake_case by convention; uppercase idents in
                // patterns are enum constructors (`Some`, `Ok`), not
                // bindings.
                if s.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') {
                    ctx.locals.insert(s.clone());
                    slots += 1;
                }
                j += 1;
            }
            Tok::Ident(_) => j += 1, // `mut`, `ref`, …
            Tok::Punct('(') | Tok::Punct(',') => j += 1,
            Tok::Punct(')') => j += 1,
            Tok::Punct(':') if !punct_at(toks, j + 1, ':') => {
                // Type annotation: scan it for array sizes, stop at `=`/`;`.
                let mut k = j + 1;
                let mut extra = 0u64;
                let mut adepth = 0i32;
                while k < end {
                    match &toks[k].tok {
                        Tok::Punct('=') if adepth <= 0 && !punct_at(toks, k + 1, '=') => break,
                        Tok::Punct(';') if adepth <= 0 => break,
                        Tok::Punct('<') => adepth += 1,
                        Tok::Punct('>') => {
                            if !punct_at(toks, k.wrapping_sub(1), '-') {
                                adepth -= 1;
                            }
                        }
                        Tok::Punct('[') => {
                            if let Some((sz, after)) = array_type_bytes(toks, k, end) {
                                extra += sz;
                                k = after;
                                continue;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                ctx.ws.functions[ctx.fn_idx].frame_bytes += extra;
                j = k;
                break;
            }
            _ => break,
        }
    }
    ctx.ws.functions[ctx.fn_idx].frame_bytes += slots.saturating_mul(LOCAL_SLOT_BYTES);
    j
}

/// Whether the `|` at `i` starts a closure literal rather than a binary
/// or-operator. Operands (`ident`, literal, `)`, `]`) before the bar mean
/// "or"; separators and `move` mean "closure".
fn closure_starts_here(toks: &[Token], i: usize, body_start: usize) -> bool {
    if i == body_start {
        return true;
    }
    match &toks[i - 1].tok {
        Tok::Ident(s) => matches!(s.as_str(), "move" | "return" | "else" | "in" | "break"),
        Tok::Lit(_) => false,
        Tok::Punct(c) => matches!(c, '(' | ',' | '{' | '=' | ';' | ':' | '>' | '&'),
        // `=> |x| …` arrives as '=' '>' — covered by '>' above; a plain
        // comparison `a > |…` is not valid Rust anyway.
    }
}

/// Parses a closure literal starting at its first `|` (or at `move`'s
/// bar); returns the index past the closure body. The closure becomes a
/// synthetic function and a `Callee::Closure` edge from the definer.
fn parse_closure(
    ctx: &mut BodyCtx<'_>,
    toks: &[Token],
    bar: usize,
    end: usize,
    guards: &[Guard],
    loop_stack: &[(usize, u32, bool)],
    paren_stack: &[Option<String>],
) -> usize {
    let line = toks[bar].line;
    // Parameter list: `||` (empty) or `|pat, …|`.
    let mut params = Vec::new();
    let mut body_start;
    if punct_at(toks, bar + 1, '|') {
        body_start = bar + 2;
    } else {
        let mut j = bar + 1;
        let mut depth = 0i32;
        while j < end {
            match &toks[j].tok {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('|') if depth <= 0 => break,
                Tok::Ident(s) if !is_keyword(s) => {
                    // Param idents; lowercase type idents after `:` are
                    // harmless extras in the local set.
                    if s.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') {
                        params.push(s.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        body_start = j + 1;
    }
    // Return-type annotation: `|x| -> T { … }`.
    if punct_at(toks, body_start, '-') && punct_at(toks, body_start + 1, '>') {
        let mut k = body_start + 2;
        while k < end && !punct_at(toks, k, '{') {
            k += 1;
        }
        body_start = k;
    }
    // Body region: a block, or a bare expression up to `,`/`)`/`;`/`}` at
    // relative depth 0.
    let (region_start, region_end, resume) = if punct_at(toks, body_start, '{') {
        let close = rules::match_brace(toks, body_start);
        (body_start + 1, close, close + 1)
    } else {
        let mut depth = 0i32;
        let mut k = body_start;
        while k < end {
            match &toks[k].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                Tok::Punct(',') | Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        (body_start, k, k)
    };

    let parent_idx = ctx.fn_idx;
    let parent_name = ctx.ws.functions[parent_idx].name.clone();
    let passed_to = paren_stack.iter().rev().flatten().next().cloned();
    let closure_idx = ctx.ws.functions.len();
    ctx.ws.functions.push(FnDef {
        name: format!("{parent_name}::{{closure@{line}}}"),
        file: ctx.file.to_string(),
        crate_name: ctx.crate_name.to_string(),
        domain: ctx.domain,
        line,
        frame_bytes: FRAME_BASE_BYTES + params.len() as u64 * LOCAL_SLOT_BYTES,
        calls: Vec::new(),
        loops: Vec::new(),
        parent: Some(parent_idx),
        passed_to,
        is_closure: true,
        has_body: true,
    });
    // The definer gets a call-shaped edge to the closure, with the guard
    // and loop context of the definition site.
    let site = CallSite {
        callee: Callee::Closure(closure_idx),
        line,
        guards: guards.iter().map(|g| g.class.clone()).collect(),
        loops: loop_stack.iter().filter(|(_, _, opened)| *opened).map(|(li, _, _)| *li).collect(),
    };
    ctx.ws.functions[parent_idx].calls.push(site);

    // `let name = [move] |…|` binds the closure to a local.
    let mut b = bar;
    if b > 0 && matches!(&toks[b - 1].tok, Tok::Ident(s) if s == "move") {
        b -= 1;
    }
    if b >= 3 && punct_at(toks, b - 1, '=') && !punct_at(toks, b - 2, '=') {
        let name = match (&toks[b - 2].tok, &toks[b - 3].tok) {
            (Tok::Ident(name), Tok::Ident(kw)) if kw == "let" => Some(name.clone()),
            (Tok::Ident(name), Tok::Ident(kw)) if kw == "mut" => (b >= 4
                && matches!(&toks[b - 4].tok, Tok::Ident(k2) if k2 == "let"))
            .then(|| name.clone()),
            _ => None,
        };
        if let Some(name) = name {
            ctx.closure_bindings.insert(name, closure_idx);
        }
    }

    // Parse the closure body as its own function, inheriting the
    // definer's locals (captures) plus its own parameters.
    let mut inner_locals = ctx.locals.clone();
    inner_locals.extend(params);
    let inner_bindings = ctx.closure_bindings.clone();
    let mut inner = BodyCtx {
        ws: ctx.ws,
        file: ctx.file,
        crate_name: ctx.crate_name,
        domain: ctx.domain,
        fn_idx: closure_idx,
        locals: inner_locals,
        closure_bindings: inner_bindings,
    };
    parse_body(&mut inner, toks, region_start, region_end);
    resume
}

/// Tries to recognize a call (or a `.lock()` guard acquisition) at `i`.
/// Returns the index to continue from if something was consumed.
#[allow(clippy::too_many_arguments)]
fn try_call(
    ctx: &mut BodyCtx<'_>,
    toks: &[Token],
    i: usize,
    end: usize,
    guards: &mut Vec<Guard>,
    loop_stack: &[(usize, u32, bool)],
    paren_stack: &mut Vec<Option<String>>,
    depth: u32,
) -> Option<usize> {
    // Method call / guard acquisition: `.name(`.
    if punct_at(toks, i, '.') {
        let name = ident_at(toks, i + 1)?;
        if !punct_at(toks, i + 2, '(') {
            return None;
        }
        if name == "lock" {
            handle_lock(ctx, toks, i, end, guards, depth);
            // Fall through to record nothing as a call: `.lock()` is the
            // guard event, mirroring the R5 extractor.
            paren_stack.push(None);
            return Some(i + 3);
        }
        let receiver = receiver_name(toks, i);
        let name = name.to_string();
        push_call(
            ctx,
            Callee::Method { name: name.clone(), receiver },
            toks[i + 1].line,
            guards,
            loop_stack,
        );
        paren_stack.push(Some(name));
        return Some(i + 3);
    }

    // Path call: `seg::seg::name(` (possibly with a turbofish before the
    // parens) — recognized at its *first* segment.
    let first = ident_at(toks, i)?;
    if is_keyword(first) && first != "self" && first != "Self" && first != "crate" {
        return None;
    }
    // Not a path start if the previous tokens are `::` or `.` (then we are
    // mid-chain and the head already handled it) — or `fn`/`struct`-likes.
    if i > 0 {
        if punct_at(toks, i - 1, '.') || punct_at(toks, i - 1, ':') || punct_at(toks, i - 1, '#') {
            return None;
        }
        if let Some(prev) = ident_at(toks, i - 1) {
            if matches!(prev, "fn" | "struct" | "enum" | "trait" | "mod" | "type" | "impl") {
                return None;
            }
        }
    }
    let mut segs = vec![first.to_string()];
    let mut j = i + 1;
    loop {
        if punct_at(toks, j, ':') && punct_at(toks, j + 1, ':') {
            if let Some(s) = ident_at(toks, j + 2) {
                segs.push(s.to_string());
                j += 3;
                continue;
            }
            // Turbofish `::<…>`.
            if punct_at(toks, j + 2, '<') {
                j = skip_angles(toks, j + 2);
                continue;
            }
        }
        break;
    }
    if !punct_at(toks, j, '(') {
        return None;
    }
    // Macro call `name!(…)` never reaches here (the `!` breaks the
    // pattern above only if directly after the ident) — check anyway.
    if punct_at(toks, j.wrapping_sub(1), '!') {
        return None;
    }
    let line = toks[i].line;
    // `drop(g)` releases a guard.
    if segs.len() == 1 && segs[0] == "drop" {
        if let Some(g) = ident_at(toks, j + 1) {
            if punct_at(toks, j + 2, ')') {
                guards.retain(|h| h.binding != g);
            }
        }
    }
    let callee = if segs.len() == 1 && ctx.closure_bindings.contains_key(&segs[0]) {
        Callee::BoundClosure(ctx.closure_bindings[&segs[0]])
    } else if segs.len() == 1 && ctx.locals.contains(&segs[0]) {
        Callee::Dynamic(segs[0].clone())
    } else {
        Callee::Path(segs.clone())
    };
    push_call(ctx, callee, line, guards, loop_stack);
    paren_stack.push(Some(segs.last().cloned().unwrap_or_default()));
    Some(j + 1)
}

fn push_call(
    ctx: &mut BodyCtx<'_>,
    callee: Callee,
    line: u32,
    guards: &[Guard],
    loop_stack: &[(usize, u32, bool)],
) {
    let site = CallSite {
        callee,
        line,
        guards: guards.iter().map(|g| g.class.clone()).collect(),
        loops: loop_stack.iter().filter(|(_, _, opened)| *opened).map(|(li, _, _)| *li).collect(),
    };
    ctx.ws.functions[ctx.fn_idx].calls.push(site);
}

/// Handles `<recv>.lock(` at the `.`: registers a guard if the result is
/// bound (`let g = x.lock()…;` or `g = x.lock()…;`), mirroring the R5
/// extractor's binding/temporary logic.
fn handle_lock(
    ctx: &BodyCtx<'_>,
    toks: &[Token],
    dot: usize,
    end: usize,
    guards: &mut Vec<Guard>,
    depth: u32,
) {
    let Some(receiver) = receiver_name(toks, dot) else { return };
    let class = format!("{}::{receiver}", ctx.crate_name);
    // Walk past `lock(…)` and any `.unwrap()` / `.expect(…)` adapters.
    let mut j = match_paren(toks, dot + 2) + 1;
    loop {
        if punct_at(toks, j, '.') {
            match ident_at(toks, j + 1) {
                Some("unwrap") | Some("expect") if punct_at(toks, j + 2, '(') => {
                    j = match_paren(toks, j + 2) + 1;
                    continue;
                }
                _ => return, // chained further: a temporary, not a binding
            }
        }
        break;
    }
    let _ = end;
    // Find the binding: walk back from the receiver chain to `=`.
    let mut k = dot;
    // Receiver chain start: skip back over `ident` / `.` / `self`.
    while k > 0 {
        match &toks[k - 1].tok {
            Tok::Ident(_) | Tok::Punct('.') => k -= 1,
            _ => break,
        }
    }
    if k == 0 || !punct_at(toks, k - 1, '=') {
        return;
    }
    // `==`/`!=`/`+=` etc. are not bindings.
    if k >= 2 && matches!(&toks[k - 2].tok, Tok::Punct(c) if matches!(c, '=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '&' | '|' | '^')) {
        return;
    }
    let mut b = k - 1;
    // Skip a `mut` and take the ident before `=`.
    while b > 0 {
        if let Some(s) = ident_at(toks, b - 1) {
            if s == "mut" {
                b -= 1;
                continue;
            }
            let binding = s.to_string();
            guards.retain(|g| g.binding != binding);
            guards.push(Guard { binding, class, depth });
            return;
        }
        return;
    }
}

/// Last identifier of the receiver chain before the `.` at `dot`,
/// skipping back over index/call groups: `self.inner.lock()` → `inner`,
/// `table[i].lock()` → `table`.
fn receiver_name(toks: &[Token], dot: usize) -> Option<String> {
    let mut j = dot;
    while j > 0 {
        match &toks[j - 1].tok {
            Tok::Punct(')') => {
                let mut depth = 0usize;
                while j > 0 {
                    match toks[j - 1].tok {
                        Tok::Punct(')') => depth += 1,
                        Tok::Punct('(') => {
                            depth -= 1;
                            if depth == 0 {
                                j -= 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
            }
            Tok::Punct(']') => {
                let mut depth = 0usize;
                while j > 0 {
                    match toks[j - 1].tok {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                j -= 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
            }
            Tok::Ident(s) => {
                if s == "self" && j >= 2 && punct_at(toks, j - 2, '.') {
                    // keep walking: `self.x` receiver is `x`, but a bare
                    // `self.lock()` receiver is `self`.
                }
                return Some(s.clone());
            }
            Tok::Punct('.') => j -= 1,
            _ => return None,
        }
    }
    None
}
