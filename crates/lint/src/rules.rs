//! Per-file rule pass: the banned-path rules R1–R3 and R6, the no-panic
//! rule R4, test-code masking, `use`-resolution, and suppression
//! application. The lock-order pass R5 lives in [`crate::lockorder`] and
//! shares the test mask computed here.

use std::collections::BTreeMap;

use crate::config::Domain;
use crate::lexer::{Lexed, Tok, Token};
use crate::report::{BadSuppression, Violation};

/// Why each rule exists, printed with every finding.
pub const RATIONALE_R1: &str =
    "wall-clock reads leak host timing into the virtual-time domain and break bit-identical replay";
pub const RATIONALE_R2: &str = "HashMap/HashSet iteration order is seeded per process (RandomState); any ordered drain diverges between runs — use BTreeMap or a sorted drain";
pub const RATIONALE_R3: &str =
    "unseeded randomness breaks deterministic replay; all entropy must flow from an explicit seed";
pub const RATIONALE_R4: &str = "a panicking rank never reaches the teardown protocol, deadlocking its peers — propagate a typed error instead";
pub const RATIONALE_R5: &str =
    "inconsistent lock acquisition order across threads can deadlock the rank fleet";
pub const RATIONALE_R6: &str = "Relaxed ordering provides no happens-before; cross-thread control-flow flags may observe stale values (advisory)";
pub const RATIONALE_R7: &str = "parking a coroutine while holding a lock keeps the lock held across the suspension; every other rank touching it then blocks an OS worker thread and the M:N pool can deadlock";
pub const RATIONALE_R8: &str = "an OS-blocking call on a coroutine stack stalls the whole worker thread, serializing every rank multiplexed onto it and leaking wall-clock timing into the virtual-time domain";
pub const RATIONALE_R9: &str = "coroutine stacks are fixed-size heap slabs guarded by a canary, not OS guard pages; an overflow corrupts adjacent memory before the canary check can catch it, so stack depth must be bounded statically";
pub const RATIONALE_R10: &str = "a loop that never reaches a yield, park, or recv monopolizes its worker thread; under cooperative scheduling the other ranks on that worker starve forever";

/// One entry in the rule registry: every rule id `detlint` has ever
/// shipped. `detlint::allow` comments naming an id outside this table are
/// reported as unknown (typo'd or retired) and fail the run.
#[derive(Debug)]
pub struct RuleInfo {
    /// Rule id as written in allows and findings.
    pub id: &'static str,
    /// One-line summary for reports.
    pub summary: &'static str,
    /// True for the call-graph rules (R7–R10); false for per-file rules.
    pub interprocedural: bool,
}

/// The registry. Retired rules would stay here with a tombstone summary so
/// old allows keep parsing (none retired yet).
pub const RULES: &[RuleInfo] = &[
    RuleInfo { id: "R1", summary: "wall-clock reads in virtual-time code", interprocedural: false },
    RuleInfo { id: "R2", summary: "randomized-iteration-order collections", interprocedural: false },
    RuleInfo { id: "R3", summary: "unseeded randomness", interprocedural: false },
    RuleInfo { id: "R4", summary: "panics in rank-thread hot paths", interprocedural: false },
    RuleInfo { id: "R5", summary: "lock-order cycles", interprocedural: false },
    RuleInfo { id: "R6", summary: "Relaxed atomic orderings (advisory)", interprocedural: false },
    RuleInfo { id: "R7", summary: "park/yield reachable under a live lock guard", interprocedural: true },
    RuleInfo { id: "R8", summary: "OS-blocking calls reachable from a coroutine", interprocedural: true },
    RuleInfo { id: "R9", summary: "coroutine stack bound over budget / recursion", interprocedural: true },
    RuleInfo { id: "R10", summary: "non-cooperative spin loop in coroutine code", interprocedural: true },
];

/// Whether `id` names a registered rule.
pub fn rule_known(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// A banned fully-qualified path prefix.
struct BannedPath {
    rule: &'static str,
    /// Matches the resolved path exactly or on a `::` segment boundary.
    prefix: &'static str,
    advisory: bool,
    rationale: &'static str,
}

const BANNED_PATHS: &[BannedPath] = &[
    BannedPath {
        rule: "R1",
        prefix: "std::time::Instant",
        advisory: false,
        rationale: RATIONALE_R1,
    },
    BannedPath {
        rule: "R1",
        prefix: "std::time::SystemTime",
        advisory: false,
        rationale: RATIONALE_R1,
    },
    BannedPath {
        rule: "R2",
        prefix: "std::collections::HashMap",
        advisory: false,
        rationale: RATIONALE_R2,
    },
    BannedPath {
        rule: "R2",
        prefix: "std::collections::HashSet",
        advisory: false,
        rationale: RATIONALE_R2,
    },
    BannedPath { rule: "R3", prefix: "rand::thread_rng", advisory: false, rationale: RATIONALE_R3 },
    BannedPath { rule: "R3", prefix: "rand::random", advisory: false, rationale: RATIONALE_R3 },
    BannedPath {
        rule: "R3",
        prefix: "std::collections::hash_map::RandomState",
        advisory: false,
        rationale: RATIONALE_R3,
    },
    BannedPath {
        rule: "R6",
        prefix: "std::sync::atomic::Ordering::Relaxed",
        advisory: true,
        rationale: RATIONALE_R6,
    },
];

/// Bare method/function segments banned by R3 wherever they appear (they
/// draw from OS entropy regardless of the receiver type).
const BANNED_SEGMENTS_R3: &[&str] = &["thread_rng", "from_entropy"];

/// Whether `rule` applies to files in `domain`. The interprocedural rules
/// R7–R10 fire wherever the parser runs (hot + virtual); this predicate
/// gates the per-file rules and documents the contract for both.
pub fn rule_active(rule: &str, domain: Domain) -> bool {
    match domain {
        Domain::Hot => {
            matches!(rule, "R1" | "R2" | "R3" | "R4" | "R5" | "R6" | "R7" | "R8" | "R9" | "R10")
        }
        Domain::Virtual => {
            matches!(rule, "R1" | "R2" | "R3" | "R5" | "R6" | "R7" | "R8" | "R9" | "R10")
        }
        Domain::Wallclock | Domain::Tooling | Domain::Test => false,
    }
}

/// Computes the mask of tokens inside test-only code: items annotated
/// `#[test]`, `#[cfg(test)]` (including `#[cfg(all(test, …))]`), or any
/// `…::test` attribute path. `#[cfg(not(test))]` is production code and is
/// NOT masked.
pub fn test_skip_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !is_attr_start(toks, i) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let (ids, mut j) = parse_attr(toks, i);
        if !is_test_attr(&ids) {
            i = j;
            continue;
        }
        // Consume any further attributes on the same item.
        while is_attr_start(toks, j) {
            let (_, nj) = parse_attr(toks, j);
            j = nj;
        }
        // Find the end of the annotated item: first `;` (e.g. `mod t;`,
        // `use …;`) or the close of the first `{…}` block (fn/mod body).
        let mut k = j;
        let mut end = toks.len();
        while k < toks.len() {
            match toks[k].tok {
                Tok::Punct(';') => {
                    end = k + 1;
                    break;
                }
                Tok::Punct('{') => {
                    end = match_brace(toks, k) + 1;
                    break;
                }
                _ => k += 1,
            }
        }
        for m in &mut mask[attr_start..end.min(toks.len())] {
            *m = true;
        }
        i = end;
    }
    mask
}

fn is_attr_start(toks: &[Token], i: usize) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('#')))
        && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
}

/// Parses `#[…]` starting at the `#`; returns the idents inside and the
/// index just past the closing `]`.
fn parse_attr(toks: &[Token], i: usize) -> (Vec<String>, usize) {
    let mut ids = Vec::new();
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (ids, j + 1);
                }
            }
            Tok::Ident(s) => ids.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    (ids, j)
}

fn is_test_attr(ids: &[String]) -> bool {
    if ids.iter().any(|s| s == "not") {
        return false;
    }
    match ids.first().map(String::as_str) {
        Some("test") => true,
        Some("cfg") => ids.iter().any(|s| s == "test"),
        // `#[tokio::test]`-style paths.
        _ => ids.last().is_some_and(|s| s == "test"),
    }
}

/// Finds the index of the `}` matching the `{` at `open`.
pub fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len() - 1
}

/// One resolved import: local alias → full path segments.
#[derive(Debug)]
pub(crate) struct Import {
    pub(crate) alias: String,
    pub(crate) path: Vec<String>,
    pub(crate) line: u32,
    pub(crate) token_index: usize,
}

/// Parses every `use` declaration; returns imports and the mask of tokens
/// belonging to use declarations (so the expression scan skips them).
pub(crate) fn parse_uses(toks: &[Token]) -> (Vec<Import>, Vec<bool>) {
    let mut imports = Vec::new();
    let mut in_use = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        let is_use = matches!(&toks[i].tok, Tok::Ident(s) if s == "use");
        if !is_use {
            i += 1;
            continue;
        }
        let start = i;
        // Find terminating `;` (use decls contain no semicolons inside).
        let mut end = i + 1;
        while end < toks.len() && !matches!(toks[end].tok, Tok::Punct(';')) {
            end += 1;
        }
        for m in &mut in_use[start..=end.min(toks.len() - 1)] {
            *m = true;
        }
        parse_use_tree(toks, i + 1, end, &mut Vec::new(), &mut imports);
        i = end + 1;
    }
    (imports, in_use)
}

/// Recursive-descent over one use tree between `i` and `end` (exclusive).
/// Returns the index after the parsed tree.
fn parse_use_tree(
    toks: &[Token],
    mut i: usize,
    end: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<Import>,
) -> usize {
    let depth_at_entry = prefix.len();
    while i < end {
        match &toks[i].tok {
            Tok::Ident(s) => {
                prefix.push(s.clone());
                i += 1;
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(':')))
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                {
                    i += 2;
                    continue;
                }
                // `as` rename?
                if let Some(Tok::Ident(kw)) = toks.get(i).map(|t| &t.tok) {
                    if kw == "as" {
                        if let Some(Tok::Ident(alias)) = toks.get(i + 1).map(|t| &t.tok) {
                            out.push(Import {
                                alias: alias.clone(),
                                path: prefix.clone(),
                                line: toks[i + 1].line,
                                token_index: i + 1,
                            });
                            prefix.truncate(depth_at_entry);
                            return i + 2;
                        }
                    }
                }
                // Leaf without rename.
                out.push(Import {
                    alias: prefix.last().cloned().unwrap_or_default(),
                    path: prefix.clone(),
                    line: toks[i - 1].line,
                    token_index: i - 1,
                });
                prefix.truncate(depth_at_entry);
                return i;
            }
            Tok::Punct('{') => {
                i += 1;
                loop {
                    if i >= end {
                        break;
                    }
                    if matches!(toks[i].tok, Tok::Punct('}')) {
                        i += 1;
                        break;
                    }
                    i = parse_use_tree(toks, i, end, prefix, out);
                    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(','))) {
                        i += 1;
                    }
                }
                prefix.truncate(depth_at_entry);
                return i;
            }
            Tok::Punct('*') => {
                // Glob: unresolvable, ignore.
                prefix.truncate(depth_at_entry);
                return i + 1;
            }
            _ => {
                prefix.truncate(depth_at_entry);
                return i + 1;
            }
        }
    }
    prefix.truncate(depth_at_entry);
    i
}

/// Checks a resolved path against the banned table; returns the match.
fn banned_match(full: &str, domain: Domain) -> Option<&'static BannedPath> {
    BANNED_PATHS.iter().find(|b| {
        rule_active(b.rule, domain)
            && (full == b.prefix
                || (full.starts_with(b.prefix) && full[b.prefix.len()..].starts_with("::")))
    })
}

/// Runs R1–R4 and R6 over one lexed file, returning raw findings.
/// Suppressions are applied later by [`apply_suppressions`], once every
/// pass (including the interprocedural ones) has contributed findings.
pub fn check_file(rel: &str, domain: Domain, lexed: &Lexed, skip: &[bool]) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &lexed.tokens;
    let (imports, in_use) = parse_uses(toks);

    // Alias map: local name → full path. `self`/`crate`/`super`-rooted
    // paths can never resolve to std/rand, but keeping them is harmless.
    let mut use_map: BTreeMap<&str, String> = BTreeMap::new();
    for imp in &imports {
        use_map.insert(imp.alias.as_str(), imp.path.join("::"));
    }

    // Banned imports at the `use` site itself.
    for imp in &imports {
        if skip.get(imp.token_index).copied().unwrap_or(false) {
            continue;
        }
        let full = imp.path.join("::");
        if let Some(b) = banned_match(&full, domain) {
            out.push(Violation {
                rule: b.rule,
                file: rel.to_string(),
                line: imp.line,
                advisory: b.advisory,
                message: format!("import of `{full}`"),
                rationale: b.rationale,
                suppressed: None,
            });
        } else if rule_active("R3", domain)
            && imp.path.iter().any(|s| BANNED_SEGMENTS_R3.contains(&s.as_str()))
        {
            out.push(Violation {
                rule: "R3",
                file: rel.to_string(),
                line: imp.line,
                advisory: false,
                message: format!("import of `{full}`"),
                rationale: RATIONALE_R3,
                suppressed: None,
            });
        }
    }

    // Expression scan: resolved path chains + R4 panic patterns.
    let mut i = 0usize;
    while i < toks.len() {
        if skip[i] || in_use[i] {
            i += 1;
            continue;
        }
        match &toks[i].tok {
            Tok::Ident(first) => {
                // R4: bare panic-family macros.
                if rule_active("R4", domain)
                    && matches!(first.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
                {
                    out.push(Violation {
                        rule: "R4",
                        file: rel.to_string(),
                        line: toks[i].line,
                        advisory: false,
                        message: format!("`{first}!` in rank-thread hot path"),
                        rationale: RATIONALE_R4,
                        suppressed: None,
                    });
                    i += 2;
                    continue;
                }
                // Collect the `a::b::c` chain.
                let line = toks[i].line;
                let mut chain = vec![first.clone()];
                let mut j = i + 1;
                while matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct(':')))
                    && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                {
                    match toks.get(j + 2).map(|t| &t.tok) {
                        Some(Tok::Ident(s)) => {
                            chain.push(s.clone());
                            j += 3;
                        }
                        _ => break,
                    }
                }
                // Resolve through the alias map.
                let full = match use_map.get(chain[0].as_str()) {
                    Some(expansion) if chain.len() > 1 => {
                        let mut f = expansion.clone();
                        for seg in &chain[1..] {
                            f.push_str("::");
                            f.push_str(seg);
                        }
                        f
                    }
                    Some(expansion) => expansion.clone(),
                    None => chain.join("::"),
                };
                if let Some(b) = banned_match(&full, domain) {
                    out.push(Violation {
                        rule: b.rule,
                        file: rel.to_string(),
                        line,
                        advisory: b.advisory,
                        message: format!("reference to `{full}`"),
                        rationale: b.rationale,
                        suppressed: None,
                    });
                } else if rule_active("R3", domain)
                    && chain.iter().any(|s| BANNED_SEGMENTS_R3.contains(&s.as_str()))
                {
                    out.push(Violation {
                        rule: "R3",
                        file: rel.to_string(),
                        line,
                        advisory: false,
                        message: format!("call of `{full}`"),
                        rationale: RATIONALE_R3,
                        suppressed: None,
                    });
                }
                i = j;
            }
            Tok::Punct('.') => {
                // R4: `.unwrap()` / `.expect(`.
                if rule_active("R4", domain) {
                    if let Some(Tok::Ident(m)) = toks.get(i + 1).map(|t| &t.tok) {
                        if (m == "unwrap" || m == "expect")
                            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('(')))
                        {
                            out.push(Violation {
                                rule: "R4",
                                file: rel.to_string(),
                                line: toks[i + 1].line,
                                advisory: false,
                                message: format!("`.{m}()` in rank-thread hot path"),
                                rationale: RATIONALE_R4,
                                suppressed: None,
                            });
                            i += 3;
                            continue;
                        }
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }

    out
}

/// Result of applying one file's suppressions.
#[derive(Debug, Default)]
pub struct SuppressionOutcome {
    /// Malformed, stale, or unknown-rule suppressions.
    pub bad_suppressions: Vec<BadSuppression>,
    /// Suppressions that covered at least one finding.
    pub suppressions_used: usize,
}

/// Applies `detlint::allow` comments for file `rel` over the (global)
/// finding list: a suppression on line N covers findings for its rule on
/// line N (trailing) and line N+1 (preceding). This runs at the end of
/// the whole pipeline so interprocedural findings (R5, R7–R10) suppress
/// like per-file ones. Suppressions naming an unregistered rule id or
/// missing their reason cover nothing and are reported; unused ones are
/// reported as stale.
pub fn apply_suppressions(
    rel: &str,
    suppressions: &[crate::lexer::Suppression],
    violations: &mut [Violation],
) -> SuppressionOutcome {
    let mut out = SuppressionOutcome::default();
    let mut used = vec![false; suppressions.len()];
    for v in violations.iter_mut().filter(|v| v.file == rel) {
        for (si, s) in suppressions.iter().enumerate() {
            if rule_known(&s.rule) && s.rule == v.rule && (v.line == s.line || v.line == s.line + 1)
            {
                if let Some(reason) = &s.reason {
                    v.suppressed = Some(reason.clone());
                    used[si] = true;
                    break;
                }
            }
        }
    }
    for (si, s) in suppressions.iter().enumerate() {
        if !rule_known(&s.rule) {
            out.bad_suppressions.push(BadSuppression {
                file: rel.to_string(),
                line: s.line,
                rule: s.rule.clone(),
                missing_reason: false,
                unknown_rule: true,
            });
        } else if s.reason.is_none() {
            out.bad_suppressions.push(BadSuppression {
                file: rel.to_string(),
                line: s.line,
                rule: s.rule.clone(),
                missing_reason: true,
                unknown_rule: false,
            });
        } else if used[si] {
            out.suppressions_used += 1;
        } else {
            out.bad_suppressions.push(BadSuppression {
                file: rel.to_string(),
                line: s.line,
                rule: s.rule.clone(),
                missing_reason: false,
                unknown_rule: false,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(domain: Domain, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let skip = test_skip_mask(&lexed);
        check_file("t.rs", domain, &lexed, &skip)
    }

    /// check_file + suppression application, mirroring the pipeline.
    fn run_suppressed(domain: Domain, src: &str) -> (Vec<Violation>, SuppressionOutcome) {
        let lexed = lex(src);
        let skip = test_skip_mask(&lexed);
        let mut vs = check_file("t.rs", domain, &lexed, &skip);
        let out = apply_suppressions("t.rs", &lexed.suppressions, &mut vs);
        (vs, out)
    }

    #[test]
    fn instant_flagged_in_virtual_not_wallclock() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let vs = run(Domain::Virtual, src);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().all(|v| v.rule == "R1"));
        assert_eq!(vs[0].line, 1);
        assert_eq!(vs[1].line, 2);
        assert!(run(Domain::Wallclock, src).is_empty());
    }

    #[test]
    fn hashmap_alias_resolved() {
        let src = "use std::collections::HashMap as Map;\nfn f() { let m: Map<u32, u32> = Map::new(); }\n";
        let vs = run(Domain::Virtual, src);
        assert!(vs.iter().all(|v| v.rule == "R2"));
        assert_eq!(vs.len(), 3, "{vs:?}"); // import + 2 references
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  #[test]\n  fn t() { let _ = HashMap::<u8, u8>::new(); x.unwrap(); }\n}\n";
        assert!(run(Domain::Hot, src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        let vs = run(Domain::Hot, src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "R4");
    }

    #[test]
    fn panic_family_flagged_only_in_hot() {
        let src = "fn f() { panic!(\"boom\"); y.expect(\"msg\"); }\n";
        let vs = run(Domain::Hot, src);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(run(Domain::Virtual, src).is_empty());
    }

    #[test]
    fn relaxed_is_advisory() {
        let src = "use std::sync::atomic::Ordering;\nfn f() { x.load(Ordering::Relaxed); x.load(Ordering::SeqCst); }\n";
        let vs = run(Domain::Virtual, src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, "R6");
        assert!(vs[0].advisory);
    }

    #[test]
    fn cmp_ordering_not_confused_with_atomic() {
        let src = "use std::cmp::Ordering;\nfn f() -> Ordering { Ordering::Less }\n";
        assert!(run(Domain::Virtual, src).is_empty());
    }

    #[test]
    fn suppression_with_reason_clears_finding() {
        let src = "// detlint::allow(R2, reason = \"keyed access only; never iterated\")\nuse std::collections::HashMap;\n";
        let (vs, out) = run_suppressed(Domain::Virtual, src);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].suppressed.is_some());
        assert_eq!(out.suppressions_used, 1);
        assert!(out.bad_suppressions.is_empty());
    }

    #[test]
    fn suppression_without_reason_does_not_clear() {
        let src = "// detlint::allow(R2)\nuse std::collections::HashSet;\n";
        let (vs, out) = run_suppressed(Domain::Virtual, src);
        assert!(vs[0].suppressed.is_none());
        assert!(out.bad_suppressions.iter().any(|b| b.missing_reason));
    }

    #[test]
    fn stale_suppression_reported() {
        let src = "// detlint::allow(R1, reason = \"nothing here\")\nfn f() {}\n";
        let (vs, out) = run_suppressed(Domain::Virtual, src);
        assert!(vs.is_empty());
        assert_eq!(out.bad_suppressions.len(), 1);
        assert!(!out.bad_suppressions[0].missing_reason);
        assert!(!out.bad_suppressions[0].unknown_rule);
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged_and_suppresses_nothing() {
        // `R99` was never a rule; `R2` would fire but the allow names the
        // wrong id, so the finding stays live AND the typo is reported.
        let src = "// detlint::allow(R99, reason = \"typo'd rule id\")\nuse std::collections::HashMap;\n";
        let (vs, out) = run_suppressed(Domain::Virtual, src);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].suppressed.is_none(), "unknown rule must not suppress");
        let bad: Vec<_> = out.bad_suppressions.iter().filter(|b| b.unknown_rule).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "R99");
    }

    #[test]
    fn registry_covers_all_shipped_rules() {
        for id in ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10"] {
            assert!(rule_known(id), "{id} missing from registry");
        }
        assert!(!rule_known("R0"));
        assert!(!rule_known("R11"));
        // Interprocedural split matches the pass structure.
        assert!(RULES.iter().filter(|r| r.interprocedural).count() == 4);
    }

    #[test]
    fn group_use_resolves_each_leaf() {
        let src = "use std::collections::{BTreeMap, HashMap, hash_map::RandomState};\n";
        let vs = run(Domain::Virtual, src);
        let rules: Vec<&str> = vs.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"R2"));
        assert!(rules.contains(&"R3"));
        assert_eq!(vs.len(), 2, "{vs:?}");
    }

    #[test]
    fn thread_rng_segment_flagged() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        let vs = run(Domain::Virtual, src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "R3");
    }

    #[test]
    fn seeded_rng_ok() {
        let src =
            "use rand::SeedableRng;\nfn f(seed: u64) { let rng = StdRng::seed_from_u64(seed); }\n";
        assert!(run(Domain::Virtual, src).is_empty());
    }
}
