//! Per-file rule pass: the banned-path rules R1–R3 and R6, the no-panic
//! rule R4, test-code masking, `use`-resolution, and suppression
//! application. The lock-order pass R5 lives in [`crate::lockorder`] and
//! shares the test mask computed here.

use std::collections::BTreeMap;

use crate::config::Domain;
use crate::lexer::{Lexed, Tok, Token};
use crate::report::{BadSuppression, Violation};

/// Why each rule exists, printed with every finding.
pub const RATIONALE_R1: &str =
    "wall-clock reads leak host timing into the virtual-time domain and break bit-identical replay";
pub const RATIONALE_R2: &str = "HashMap/HashSet iteration order is seeded per process (RandomState); any ordered drain diverges between runs — use BTreeMap or a sorted drain";
pub const RATIONALE_R3: &str =
    "unseeded randomness breaks deterministic replay; all entropy must flow from an explicit seed";
pub const RATIONALE_R4: &str = "a panicking rank never reaches the teardown protocol, deadlocking its peers — propagate a typed error instead";
pub const RATIONALE_R5: &str =
    "inconsistent lock acquisition order across threads can deadlock the rank fleet";
pub const RATIONALE_R6: &str = "Relaxed ordering provides no happens-before; cross-thread control-flow flags may observe stale values (advisory)";

/// A banned fully-qualified path prefix.
struct BannedPath {
    rule: &'static str,
    /// Matches the resolved path exactly or on a `::` segment boundary.
    prefix: &'static str,
    advisory: bool,
    rationale: &'static str,
}

const BANNED_PATHS: &[BannedPath] = &[
    BannedPath {
        rule: "R1",
        prefix: "std::time::Instant",
        advisory: false,
        rationale: RATIONALE_R1,
    },
    BannedPath {
        rule: "R1",
        prefix: "std::time::SystemTime",
        advisory: false,
        rationale: RATIONALE_R1,
    },
    BannedPath {
        rule: "R2",
        prefix: "std::collections::HashMap",
        advisory: false,
        rationale: RATIONALE_R2,
    },
    BannedPath {
        rule: "R2",
        prefix: "std::collections::HashSet",
        advisory: false,
        rationale: RATIONALE_R2,
    },
    BannedPath { rule: "R3", prefix: "rand::thread_rng", advisory: false, rationale: RATIONALE_R3 },
    BannedPath { rule: "R3", prefix: "rand::random", advisory: false, rationale: RATIONALE_R3 },
    BannedPath {
        rule: "R3",
        prefix: "std::collections::hash_map::RandomState",
        advisory: false,
        rationale: RATIONALE_R3,
    },
    BannedPath {
        rule: "R6",
        prefix: "std::sync::atomic::Ordering::Relaxed",
        advisory: true,
        rationale: RATIONALE_R6,
    },
];

/// Bare method/function segments banned by R3 wherever they appear (they
/// draw from OS entropy regardless of the receiver type).
const BANNED_SEGMENTS_R3: &[&str] = &["thread_rng", "from_entropy"];

/// Whether `rule` applies to files in `domain`.
pub fn rule_active(rule: &str, domain: Domain) -> bool {
    match domain {
        Domain::Hot => matches!(rule, "R1" | "R2" | "R3" | "R4" | "R6"),
        Domain::Virtual => matches!(rule, "R1" | "R2" | "R3" | "R6"),
        Domain::Wallclock | Domain::Tooling | Domain::Test => false,
    }
}

/// Result of linting one file (R5 input is extracted separately).
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Findings with suppressions already applied.
    pub violations: Vec<Violation>,
    /// Malformed / stale suppressions.
    pub bad_suppressions: Vec<BadSuppression>,
    /// Suppressions that covered at least one finding.
    pub suppressions_used: usize,
}

/// Computes the mask of tokens inside test-only code: items annotated
/// `#[test]`, `#[cfg(test)]` (including `#[cfg(all(test, …))]`), or any
/// `…::test` attribute path. `#[cfg(not(test))]` is production code and is
/// NOT masked.
pub fn test_skip_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !is_attr_start(toks, i) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let (ids, mut j) = parse_attr(toks, i);
        if !is_test_attr(&ids) {
            i = j;
            continue;
        }
        // Consume any further attributes on the same item.
        while is_attr_start(toks, j) {
            let (_, nj) = parse_attr(toks, j);
            j = nj;
        }
        // Find the end of the annotated item: first `;` (e.g. `mod t;`,
        // `use …;`) or the close of the first `{…}` block (fn/mod body).
        let mut k = j;
        let mut end = toks.len();
        while k < toks.len() {
            match toks[k].tok {
                Tok::Punct(';') => {
                    end = k + 1;
                    break;
                }
                Tok::Punct('{') => {
                    end = match_brace(toks, k) + 1;
                    break;
                }
                _ => k += 1,
            }
        }
        for m in &mut mask[attr_start..end.min(toks.len())] {
            *m = true;
        }
        i = end;
    }
    mask
}

fn is_attr_start(toks: &[Token], i: usize) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('#')))
        && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
}

/// Parses `#[…]` starting at the `#`; returns the idents inside and the
/// index just past the closing `]`.
fn parse_attr(toks: &[Token], i: usize) -> (Vec<String>, usize) {
    let mut ids = Vec::new();
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (ids, j + 1);
                }
            }
            Tok::Ident(s) => ids.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    (ids, j)
}

fn is_test_attr(ids: &[String]) -> bool {
    if ids.iter().any(|s| s == "not") {
        return false;
    }
    match ids.first().map(String::as_str) {
        Some("test") => true,
        Some("cfg") => ids.iter().any(|s| s == "test"),
        // `#[tokio::test]`-style paths.
        _ => ids.last().is_some_and(|s| s == "test"),
    }
}

/// Finds the index of the `}` matching the `{` at `open`.
pub fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len() - 1
}

/// One resolved import: local alias → full path segments.
#[derive(Debug)]
struct Import {
    alias: String,
    path: Vec<String>,
    line: u32,
    token_index: usize,
}

/// Parses every `use` declaration; returns imports and the mask of tokens
/// belonging to use declarations (so the expression scan skips them).
fn parse_uses(toks: &[Token]) -> (Vec<Import>, Vec<bool>) {
    let mut imports = Vec::new();
    let mut in_use = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        let is_use = matches!(&toks[i].tok, Tok::Ident(s) if s == "use");
        if !is_use {
            i += 1;
            continue;
        }
        let start = i;
        // Find terminating `;` (use decls contain no semicolons inside).
        let mut end = i + 1;
        while end < toks.len() && !matches!(toks[end].tok, Tok::Punct(';')) {
            end += 1;
        }
        for m in &mut in_use[start..=end.min(toks.len() - 1)] {
            *m = true;
        }
        parse_use_tree(toks, i + 1, end, &mut Vec::new(), &mut imports);
        i = end + 1;
    }
    (imports, in_use)
}

/// Recursive-descent over one use tree between `i` and `end` (exclusive).
/// Returns the index after the parsed tree.
fn parse_use_tree(
    toks: &[Token],
    mut i: usize,
    end: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<Import>,
) -> usize {
    let depth_at_entry = prefix.len();
    while i < end {
        match &toks[i].tok {
            Tok::Ident(s) => {
                prefix.push(s.clone());
                i += 1;
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(':')))
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                {
                    i += 2;
                    continue;
                }
                // `as` rename?
                if let Some(Tok::Ident(kw)) = toks.get(i).map(|t| &t.tok) {
                    if kw == "as" {
                        if let Some(Tok::Ident(alias)) = toks.get(i + 1).map(|t| &t.tok) {
                            out.push(Import {
                                alias: alias.clone(),
                                path: prefix.clone(),
                                line: toks[i + 1].line,
                                token_index: i + 1,
                            });
                            prefix.truncate(depth_at_entry);
                            return i + 2;
                        }
                    }
                }
                // Leaf without rename.
                out.push(Import {
                    alias: prefix.last().cloned().unwrap_or_default(),
                    path: prefix.clone(),
                    line: toks[i - 1].line,
                    token_index: i - 1,
                });
                prefix.truncate(depth_at_entry);
                return i;
            }
            Tok::Punct('{') => {
                i += 1;
                loop {
                    if i >= end {
                        break;
                    }
                    if matches!(toks[i].tok, Tok::Punct('}')) {
                        i += 1;
                        break;
                    }
                    i = parse_use_tree(toks, i, end, prefix, out);
                    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(','))) {
                        i += 1;
                    }
                }
                prefix.truncate(depth_at_entry);
                return i;
            }
            Tok::Punct('*') => {
                // Glob: unresolvable, ignore.
                prefix.truncate(depth_at_entry);
                return i + 1;
            }
            _ => {
                prefix.truncate(depth_at_entry);
                return i + 1;
            }
        }
    }
    prefix.truncate(depth_at_entry);
    i
}

/// Checks a resolved path against the banned table; returns the match.
fn banned_match(full: &str, domain: Domain) -> Option<&'static BannedPath> {
    BANNED_PATHS.iter().find(|b| {
        rule_active(b.rule, domain)
            && (full == b.prefix
                || (full.starts_with(b.prefix) && full[b.prefix.len()..].starts_with("::")))
    })
}

/// Runs R1–R4 and R6 over one lexed file.
pub fn check_file(rel: &str, domain: Domain, lexed: &Lexed, skip: &[bool]) -> FileOutcome {
    let mut out = FileOutcome::default();
    let toks = &lexed.tokens;
    let (imports, in_use) = parse_uses(toks);

    // Alias map: local name → full path. `self`/`crate`/`super`-rooted
    // paths can never resolve to std/rand, but keeping them is harmless.
    let mut use_map: BTreeMap<&str, String> = BTreeMap::new();
    for imp in &imports {
        use_map.insert(imp.alias.as_str(), imp.path.join("::"));
    }

    // Banned imports at the `use` site itself.
    for imp in &imports {
        if skip.get(imp.token_index).copied().unwrap_or(false) {
            continue;
        }
        let full = imp.path.join("::");
        if let Some(b) = banned_match(&full, domain) {
            out.violations.push(Violation {
                rule: b.rule,
                file: rel.to_string(),
                line: imp.line,
                advisory: b.advisory,
                message: format!("import of `{full}`"),
                rationale: b.rationale,
                suppressed: None,
            });
        } else if rule_active("R3", domain)
            && imp.path.iter().any(|s| BANNED_SEGMENTS_R3.contains(&s.as_str()))
        {
            out.violations.push(Violation {
                rule: "R3",
                file: rel.to_string(),
                line: imp.line,
                advisory: false,
                message: format!("import of `{full}`"),
                rationale: RATIONALE_R3,
                suppressed: None,
            });
        }
    }

    // Expression scan: resolved path chains + R4 panic patterns.
    let mut i = 0usize;
    while i < toks.len() {
        if skip[i] || in_use[i] {
            i += 1;
            continue;
        }
        match &toks[i].tok {
            Tok::Ident(first) => {
                // R4: bare panic-family macros.
                if rule_active("R4", domain)
                    && matches!(first.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
                {
                    out.violations.push(Violation {
                        rule: "R4",
                        file: rel.to_string(),
                        line: toks[i].line,
                        advisory: false,
                        message: format!("`{first}!` in rank-thread hot path"),
                        rationale: RATIONALE_R4,
                        suppressed: None,
                    });
                    i += 2;
                    continue;
                }
                // Collect the `a::b::c` chain.
                let line = toks[i].line;
                let mut chain = vec![first.clone()];
                let mut j = i + 1;
                while matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct(':')))
                    && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                {
                    match toks.get(j + 2).map(|t| &t.tok) {
                        Some(Tok::Ident(s)) => {
                            chain.push(s.clone());
                            j += 3;
                        }
                        _ => break,
                    }
                }
                // Resolve through the alias map.
                let full = match use_map.get(chain[0].as_str()) {
                    Some(expansion) if chain.len() > 1 => {
                        let mut f = expansion.clone();
                        for seg in &chain[1..] {
                            f.push_str("::");
                            f.push_str(seg);
                        }
                        f
                    }
                    Some(expansion) => expansion.clone(),
                    None => chain.join("::"),
                };
                if let Some(b) = banned_match(&full, domain) {
                    out.violations.push(Violation {
                        rule: b.rule,
                        file: rel.to_string(),
                        line,
                        advisory: b.advisory,
                        message: format!("reference to `{full}`"),
                        rationale: b.rationale,
                        suppressed: None,
                    });
                } else if rule_active("R3", domain)
                    && chain.iter().any(|s| BANNED_SEGMENTS_R3.contains(&s.as_str()))
                {
                    out.violations.push(Violation {
                        rule: "R3",
                        file: rel.to_string(),
                        line,
                        advisory: false,
                        message: format!("call of `{full}`"),
                        rationale: RATIONALE_R3,
                        suppressed: None,
                    });
                }
                i = j;
            }
            Tok::Punct('.') => {
                // R4: `.unwrap()` / `.expect(`.
                if rule_active("R4", domain) {
                    if let Some(Tok::Ident(m)) = toks.get(i + 1).map(|t| &t.tok) {
                        if (m == "unwrap" || m == "expect")
                            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('(')))
                        {
                            out.violations.push(Violation {
                                rule: "R4",
                                file: rel.to_string(),
                                line: toks[i + 1].line,
                                advisory: false,
                                message: format!("`.{m}()` in rank-thread hot path"),
                                rationale: RATIONALE_R4,
                                suppressed: None,
                            });
                            i += 3;
                            continue;
                        }
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }

    apply_suppressions(rel, lexed, &mut out);
    out
}

/// Applies `detlint::allow` comments: a suppression on line N covers
/// findings for its rule on line N (trailing) and line N+1 (preceding).
/// Suppressions without a reason cover nothing and are reported; unused
/// suppressions are reported as stale.
fn apply_suppressions(rel: &str, lexed: &Lexed, out: &mut FileOutcome) {
    let mut used = vec![false; lexed.suppressions.len()];
    for v in &mut out.violations {
        for (si, s) in lexed.suppressions.iter().enumerate() {
            if s.rule == v.rule && (v.line == s.line || v.line == s.line + 1) {
                if let Some(reason) = &s.reason {
                    v.suppressed = Some(reason.clone());
                    used[si] = true;
                    break;
                }
            }
        }
    }
    for (si, s) in lexed.suppressions.iter().enumerate() {
        if s.reason.is_none() {
            out.bad_suppressions.push(BadSuppression {
                file: rel.to_string(),
                line: s.line,
                rule: s.rule.clone(),
                missing_reason: true,
            });
        } else if used[si] {
            out.suppressions_used += 1;
        } else {
            out.bad_suppressions.push(BadSuppression {
                file: rel.to_string(),
                line: s.line,
                rule: s.rule.clone(),
                missing_reason: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(domain: Domain, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let skip = test_skip_mask(&lexed);
        check_file("t.rs", domain, &lexed, &skip).violations
    }

    #[test]
    fn instant_flagged_in_virtual_not_wallclock() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let vs = run(Domain::Virtual, src);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().all(|v| v.rule == "R1"));
        assert_eq!(vs[0].line, 1);
        assert_eq!(vs[1].line, 2);
        assert!(run(Domain::Wallclock, src).is_empty());
    }

    #[test]
    fn hashmap_alias_resolved() {
        let src = "use std::collections::HashMap as Map;\nfn f() { let m: Map<u32, u32> = Map::new(); }\n";
        let vs = run(Domain::Virtual, src);
        assert!(vs.iter().all(|v| v.rule == "R2"));
        assert_eq!(vs.len(), 3, "{vs:?}"); // import + 2 references
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  #[test]\n  fn t() { let _ = HashMap::<u8, u8>::new(); x.unwrap(); }\n}\n";
        assert!(run(Domain::Hot, src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        let vs = run(Domain::Hot, src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "R4");
    }

    #[test]
    fn panic_family_flagged_only_in_hot() {
        let src = "fn f() { panic!(\"boom\"); y.expect(\"msg\"); }\n";
        let vs = run(Domain::Hot, src);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(run(Domain::Virtual, src).is_empty());
    }

    #[test]
    fn relaxed_is_advisory() {
        let src = "use std::sync::atomic::Ordering;\nfn f() { x.load(Ordering::Relaxed); x.load(Ordering::SeqCst); }\n";
        let vs = run(Domain::Virtual, src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, "R6");
        assert!(vs[0].advisory);
    }

    #[test]
    fn cmp_ordering_not_confused_with_atomic() {
        let src = "use std::cmp::Ordering;\nfn f() -> Ordering { Ordering::Less }\n";
        assert!(run(Domain::Virtual, src).is_empty());
    }

    #[test]
    fn suppression_with_reason_clears_finding() {
        let src = "// detlint::allow(R2, reason = \"keyed access only; never iterated\")\nuse std::collections::HashMap;\n";
        let lexed = lex(src);
        let skip = test_skip_mask(&lexed);
        let out = check_file("t.rs", Domain::Virtual, &lexed, &skip);
        assert_eq!(out.violations.len(), 1);
        assert!(out.violations[0].suppressed.is_some());
        assert_eq!(out.suppressions_used, 1);
        assert!(out.bad_suppressions.is_empty());
    }

    #[test]
    fn suppression_without_reason_does_not_clear() {
        let src = "// detlint::allow(R2)\nuse std::collections::HashSet;\n";
        let lexed = lex(src);
        let skip = test_skip_mask(&lexed);
        let out = check_file("t.rs", Domain::Virtual, &lexed, &skip);
        assert!(out.violations[0].suppressed.is_none());
        assert!(out.bad_suppressions.iter().any(|b| b.missing_reason));
    }

    #[test]
    fn stale_suppression_reported() {
        let src = "// detlint::allow(R1, reason = \"nothing here\")\nfn f() {}\n";
        let lexed = lex(src);
        let skip = test_skip_mask(&lexed);
        let out = check_file("t.rs", Domain::Virtual, &lexed, &skip);
        assert!(out.violations.is_empty());
        assert_eq!(out.bad_suppressions.len(), 1);
        assert!(!out.bad_suppressions[0].missing_reason);
    }

    #[test]
    fn group_use_resolves_each_leaf() {
        let src = "use std::collections::{BTreeMap, HashMap, hash_map::RandomState};\n";
        let vs = run(Domain::Virtual, src);
        let rules: Vec<&str> = vs.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"R2"));
        assert!(rules.contains(&"R3"));
        assert_eq!(vs.len(), 2, "{vs:?}");
    }

    #[test]
    fn thread_rng_segment_flagged() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        let vs = run(Domain::Virtual, src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "R3");
    }

    #[test]
    fn seeded_rng_ok() {
        let src =
            "use rand::SeedableRng;\nfn f(seed: u64) { let rng = StdRng::seed_from_u64(seed); }\n";
        assert!(run(Domain::Virtual, src).is_empty());
    }
}
