//! Failure schedules: sampled per-process death times and the sphere
//! structure that decides when the *job* (rather than a process) fails.

use serde::{Deserialize, Serialize};

use crate::poisson::ExpSampler;

/// The virtual→physical grouping: `groups[v]` lists the physical process
/// ids forming virtual process `v`'s replica sphere.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaGroups {
    groups: Vec<Vec<usize>>,
    n_physical: usize,
}

impl ReplicaGroups {
    /// Builds groups from explicit member lists.
    ///
    /// # Panics
    ///
    /// Panics if the lists do not form a partition of `0..n_physical`
    /// (every physical id appearing exactly once), or any group is empty.
    pub fn new(groups: Vec<Vec<usize>>) -> Self {
        let n_physical: usize = groups.iter().map(Vec::len).sum();
        let mut seen = vec![false; n_physical];
        for g in &groups {
            assert!(!g.is_empty(), "every virtual process needs at least one replica");
            for &p in g {
                assert!(p < n_physical, "physical id {p} out of range {n_physical}");
                assert!(!seen[p], "physical id {p} appears in two spheres");
                seen[p] = true;
            }
        }
        ReplicaGroups { groups, n_physical }
    }

    /// Uniform redundancy: `n_virtual` spheres of exactly `replicas`
    /// members, laid out like the replication layer (primaries first, then
    /// shadows in order).
    ///
    /// # Panics
    ///
    /// Panics if `n_virtual == 0` or `replicas == 0`.
    pub fn uniform(n_virtual: usize, replicas: usize) -> Self {
        assert!(n_virtual > 0 && replicas > 0);
        let mut groups = vec![Vec::with_capacity(replicas); n_virtual];
        for (v, g) in groups.iter_mut().enumerate() {
            g.push(v);
        }
        let mut next = n_virtual;
        for _ in 1..replicas {
            for g in groups.iter_mut() {
                g.push(next);
                next += 1;
            }
        }
        ReplicaGroups { groups, n_physical: n_virtual * replicas }
    }

    /// Builds groups from per-virtual replica counts (partial redundancy),
    /// using the primaries-then-shadows layout.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or contains a zero.
    pub fn from_counts(counts: &[usize]) -> Self {
        assert!(!counts.is_empty());
        let n_virtual = counts.len();
        let mut groups: Vec<Vec<usize>> = (0..n_virtual).map(|v| vec![v]).collect();
        let mut next = n_virtual;
        for (v, &c) in counts.iter().enumerate() {
            assert!(c > 0, "virtual process {v} needs at least one replica");
            for _ in 1..c {
                groups[v].push(next);
                next += 1;
            }
        }
        ReplicaGroups { groups, n_physical: next }
    }

    /// Number of virtual processes (spheres).
    pub fn n_virtual(&self) -> usize {
        self.groups.len()
    }

    /// Total number of physical processes.
    pub fn n_physical(&self) -> usize {
        self.n_physical
    }

    /// The member physical ids of sphere `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn members(&self, v: usize) -> &[usize] {
        &self.groups[v]
    }

    /// Iterates over spheres.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> + '_ {
        self.groups.iter().map(Vec::as_slice)
    }
}

/// One attempt's sampled failure times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSchedule {
    /// `death_time[p]`: seconds (relative to attempt start) at which
    /// physical process `p` fail-stops. Always finite: under a Poisson
    /// process every node eventually fails.
    pub death_times: Vec<f64>,
}

impl FailureSchedule {
    /// Samples a schedule for `n_physical` processes with per-process MTBF
    /// `mtbf` (seconds) from `sampler`.
    pub fn sample(n_physical: usize, sampler: &mut ExpSampler) -> Self {
        FailureSchedule { death_times: (0..n_physical).map(|_| sampler.sample()).collect() }
    }

    /// The earliest individual process failure.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty.
    pub fn first_process_failure(&self) -> f64 {
        self.death_times.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The time at which the **job** fails: the minimum over spheres of the
    /// sphere's death time, where a sphere dies when its *last* replica
    /// dies. Returns `(time, sphere_index)`; for a failure-free schedule
    /// (infinite death times) the time is `INFINITY` and the sphere index
    /// is the sentinel `usize::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `groups` references physical ids outside this schedule.
    pub fn job_failure(&self, groups: &ReplicaGroups) -> (f64, usize) {
        assert_eq!(groups.n_physical(), self.death_times.len());
        let mut best = (f64::INFINITY, usize::MAX);
        for (v, members) in groups.iter().enumerate() {
            let sphere_death =
                members.iter().map(|&p| self.death_times[p]).fold(f64::NEG_INFINITY, f64::max);
            if sphere_death < best.0 {
                best = (sphere_death, v);
            }
        }
        best
    }

    /// Physical processes dead by time `t`.
    pub fn dead_by(&self, t: f64) -> Vec<usize> {
        self.death_times.iter().enumerate().filter(|(_, d)| **d <= t).map(|(p, _)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_groups_layout() {
        let g = ReplicaGroups::uniform(3, 2);
        assert_eq!(g.n_virtual(), 3);
        assert_eq!(g.n_physical(), 6);
        assert_eq!(g.members(0), &[0, 3]);
        assert_eq!(g.members(2), &[2, 5]);
    }

    #[test]
    fn from_counts_partial() {
        // 1.5x over 4: evens get 2 replicas.
        let g = ReplicaGroups::from_counts(&[2, 1, 2, 1]);
        assert_eq!(g.n_physical(), 6);
        assert_eq!(g.members(0), &[0, 4]);
        assert_eq!(g.members(1), &[1]);
        assert_eq!(g.members(2), &[2, 5]);
    }

    #[test]
    #[should_panic(expected = "two spheres")]
    fn overlapping_groups_rejected() {
        let _ = ReplicaGroups::new(vec![vec![0, 1], vec![1]]);
    }

    #[test]
    fn job_failure_needs_whole_sphere() {
        let groups = ReplicaGroups::uniform(2, 2); // spheres {0,2} {1,3}
        let sched = FailureSchedule { death_times: vec![1.0, 100.0, 50.0, 2.0] };
        // Sphere 0 dies at max(1, 50) = 50; sphere 1 at max(100, 2) = 100.
        let (t, sphere) = sched.job_failure(&groups);
        assert_eq!(t, 50.0);
        assert_eq!(sphere, 0);
        assert_eq!(sched.first_process_failure(), 1.0);
    }

    #[test]
    fn no_redundancy_job_fails_at_first_failure() {
        let groups = ReplicaGroups::uniform(4, 1);
        let sched = FailureSchedule { death_times: vec![9.0, 3.0, 7.0, 5.0] };
        let (t, sphere) = sched.job_failure(&groups);
        assert_eq!(t, 3.0);
        assert_eq!(sphere, 1);
    }

    #[test]
    fn dead_by_filters() {
        let sched = FailureSchedule { death_times: vec![1.0, 5.0, 3.0] };
        assert_eq!(sched.dead_by(0.5), Vec::<usize>::new());
        assert_eq!(sched.dead_by(3.0), vec![0, 2]);
        assert_eq!(sched.dead_by(10.0), vec![0, 1, 2]);
    }

    #[test]
    fn redundancy_extends_expected_job_lifetime() {
        // Statistical check across seeds: dual redundancy survives far
        // longer than no redundancy on the same cluster size.
        let mut sum1 = 0.0;
        let mut sum2 = 0.0;
        for seed in 0..200 {
            let mut s = ExpSampler::new(100.0, seed);
            let sched1 = FailureSchedule::sample(16, &mut s);
            sum1 += sched1.job_failure(&ReplicaGroups::uniform(16, 1)).0;
            let sched2 = FailureSchedule::sample(16, &mut s);
            sum2 += sched2.job_failure(&ReplicaGroups::uniform(8, 2)).0;
        }
        assert!(
            sum2 > 3.0 * sum1,
            "dual-redundant lifetime {sum2} should dwarf 1x lifetime {sum1}"
        );
    }
}
