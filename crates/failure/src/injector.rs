//! The attempt-level failure injector driving restart loops.

use crate::poisson::ExpSampler;
use crate::schedule::{FailureSchedule, ReplicaGroups};
use crate::trace::{FailureEvent, FailureTrace};

/// What the injector decides for one execution attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptPlan {
    /// Attempt index (0-based).
    pub attempt: u64,
    /// Virtual time (seconds, absolute) at which the attempt starts.
    pub start_time: f64,
    /// Absolute virtual time at which the job fails (first sphere fully
    /// dead). The executor runs the attempt with this as its abort horizon;
    /// if the application finishes earlier, the failure never materializes.
    pub job_failure_time: f64,
    /// The sphere (virtual process) whose death kills the job.
    pub killer_sphere: usize,
    /// Absolute time of the earliest *individual* process failure (for
    /// statistics; does not kill the job while its sphere survives).
    pub first_process_failure: f64,
    /// The raw sampled schedule (relative to `start_time`).
    pub schedule: FailureSchedule,
}

impl AttemptPlan {
    /// Per-process death times as **absolute** virtual seconds (the
    /// schedule itself is relative to [`start_time`](Self::start_time)),
    /// ready to hand to the runtime's live fail-stop injection
    /// (`death_times` builders). Processes that never die stay at
    /// `f64::INFINITY`.
    pub fn absolute_death_times(&self) -> Vec<f64> {
        self.schedule
            .death_times
            .iter()
            .map(|&d| if d.is_finite() { self.start_time + d } else { f64::INFINITY })
            .collect()
    }
}

/// Samples fresh failure schedules per attempt and records the resulting
/// event trace, mirroring the paper's injector semantics (spares replace
/// failed nodes at restart, so every attempt starts fully alive).
#[derive(Debug, Clone)]
pub struct FailureInjector {
    groups: ReplicaGroups,
    sampler: ExpSampler,
    attempts: u64,
    trace: FailureTrace,
}

impl FailureInjector {
    /// Creates an injector for the given sphere structure with per-process
    /// MTBF `mtbf_seconds` and a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `mtbf_seconds` is not positive and finite.
    pub fn new(groups: ReplicaGroups, mtbf_seconds: f64, seed: u64) -> Self {
        FailureInjector {
            groups,
            sampler: ExpSampler::new(mtbf_seconds, seed),
            attempts: 0,
            trace: FailureTrace::new(),
        }
    }

    /// The sphere structure.
    pub fn groups(&self) -> &ReplicaGroups {
        &self.groups
    }

    /// Per-process MTBF, seconds.
    pub fn mtbf(&self) -> f64 {
        self.sampler.mean()
    }

    /// Number of attempts planned so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// The accumulated failure-event trace.
    pub fn trace(&self) -> &FailureTrace {
        &self.trace
    }

    /// Mutable access to the trace (for pruning events of an attempt that
    /// completed before its planned failure).
    pub fn trace_mut(&mut self) -> &mut FailureTrace {
        &mut self.trace
    }

    /// Draws one fresh exponential lifetime from the injector's stream:
    /// the time-to-failure of a respawned replica, **relative to its rejoin
    /// commit**. The self-healing executor uses this so respawned
    /// incarnations fail at the same per-process MTBF as the original
    /// processes, from the same deterministic seed sequence.
    pub fn resample_death(&mut self) -> f64 {
        self.sampler.sample()
    }

    /// Plans the next attempt starting at absolute virtual time
    /// `start_time`: samples fresh per-process failures and computes when
    /// the job would die.
    pub fn plan_attempt(&mut self, start_time: f64) -> AttemptPlan {
        let schedule = FailureSchedule::sample(self.groups.n_physical(), &mut self.sampler);
        let (rel_failure, killer_sphere) = schedule.job_failure(&self.groups);
        let attempt = self.attempts;
        self.attempts += 1;
        // Record individual process deaths up to the job failure: these are
        // the failures that actually "occur" during the attempt. With an
        // infinite MTBF no failure ever materializes (killer_sphere is a
        // sentinel in that case).
        if rel_failure.is_finite() {
            for (p, d) in schedule.death_times.iter().enumerate() {
                if *d <= rel_failure {
                    self.trace.record(FailureEvent {
                        attempt,
                        time: start_time + d,
                        process: p,
                        killed_job: *d == rel_failure
                            && self.groups.members(killer_sphere).contains(&p),
                    });
                }
            }
        }
        AttemptPlan {
            attempt,
            start_time,
            job_failure_time: start_time + rel_failure,
            killer_sphere,
            first_process_failure: start_time + schedule.first_process_failure(),
            schedule,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_death_times_offset_by_start() {
        let mut inj = FailureInjector::new(ReplicaGroups::uniform(3, 2), 500.0, 11);
        let plan = inj.plan_attempt(100.0);
        let abs = plan.absolute_death_times();
        assert_eq!(abs.len(), 6);
        for (a, d) in abs.iter().zip(&plan.schedule.death_times) {
            if d.is_finite() {
                assert_eq!(*a, 100.0 + d);
            } else {
                assert_eq!(*a, f64::INFINITY);
            }
        }
    }

    #[test]
    fn plans_are_sequential_and_fresh() {
        let mut inj = FailureInjector::new(ReplicaGroups::uniform(4, 2), 1000.0, 5);
        let a = inj.plan_attempt(0.0);
        let b = inj.plan_attempt(a.job_failure_time + 60.0);
        assert_eq!(a.attempt, 0);
        assert_eq!(b.attempt, 1);
        assert!(b.start_time > a.job_failure_time);
        assert_ne!(a.schedule, b.schedule, "fresh samples per attempt");
        assert_eq!(inj.attempts(), 2);
    }

    #[test]
    fn failure_times_absolute() {
        let mut inj = FailureInjector::new(ReplicaGroups::uniform(2, 1), 10.0, 9);
        let plan = inj.plan_attempt(500.0);
        assert!(plan.job_failure_time > 500.0);
        assert!(plan.first_process_failure > 500.0);
        assert!(plan.first_process_failure <= plan.job_failure_time);
    }

    #[test]
    fn trace_records_killing_event() {
        let mut inj = FailureInjector::new(ReplicaGroups::uniform(3, 1), 100.0, 11);
        let plan = inj.plan_attempt(0.0);
        let killers: Vec<&FailureEvent> =
            inj.trace().events().iter().filter(|e| e.killed_job).collect();
        assert_eq!(killers.len(), 1);
        assert_eq!(killers[0].time, plan.job_failure_time);
    }

    #[test]
    fn deterministic_across_reconstruction() {
        let mk = || FailureInjector::new(ReplicaGroups::uniform(8, 2), 250.0, 77);
        let mut a = mk();
        let mut b = mk();
        for i in 0..5 {
            let pa = a.plan_attempt(i as f64 * 100.0);
            let pb = b.plan_attempt(i as f64 * 100.0);
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn higher_redundancy_survives_longer_on_average() {
        let horizon = |replicas: usize, seed: u64| {
            let mut inj = FailureInjector::new(ReplicaGroups::uniform(8, replicas), 100.0, seed);
            (0..50).map(|i| inj.plan_attempt(i as f64).job_failure_time - i as f64).sum::<f64>()
        };
        let h1: f64 = (0..5).map(|s| horizon(1, s)).sum();
        let h2: f64 = (0..5).map(|s| horizon(2, s)).sum();
        let h3: f64 = (0..5).map(|s| horizon(3, s)).sum();
        assert!(h2 > 2.0 * h1, "h1={h1} h2={h2}");
        assert!(h3 > h2, "h2={h2} h3={h3}");
    }
}
