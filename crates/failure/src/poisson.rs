//! Exponential inter-arrival sampling for Poisson failure processes.
//!
//! Implemented via the inverse CDF, `t = −θ·ln(1−u)` with `u ∈ [0,1)`, so
//! the only dependency is a uniform RNG (`rand`); no distribution crate is
//! needed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded sampler of exponential inter-arrival times.
#[derive(Debug, Clone)]
pub struct ExpSampler {
    rng: StdRng,
    mean: f64,
}

impl ExpSampler {
    /// Creates a sampler with the given mean (the MTBF `θ`) and seed.
    /// A mean of `f64::INFINITY` models a failure-free system: every
    /// sample is `INFINITY`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive (or is NaN).
    pub fn new(mean: f64, seed: u64) -> Self {
        assert!(mean > 0.0 && !mean.is_nan(), "mean must be positive, got {mean}");
        ExpSampler { rng: StdRng::seed_from_u64(seed), mean }
    }

    /// The mean of the distribution (θ).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one exponential sample (`INFINITY` for an infinite mean).
    pub fn sample(&mut self) -> f64 {
        if self.mean.is_infinite() {
            return f64::INFINITY;
        }
        let u: f64 = self.rng.gen(); // [0, 1)
        -self.mean * (1.0 - u).ln()
    }

    /// Draws the arrival times of a Poisson process within `[0, horizon)`.
    pub fn arrivals_until(&mut self, horizon: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut t = self.sample();
        while t < horizon {
            out.push(t);
            t += self.sample();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_positive() {
        let mut s = ExpSampler::new(2.0, 1);
        for _ in 0..1000 {
            assert!(s.sample() > 0.0);
        }
    }

    #[test]
    fn mean_converges() {
        let mut s = ExpSampler::new(5.0, 7);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| s.sample()).sum();
        let mean = total / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ExpSampler::new(1.0, 99);
        let mut b = ExpSampler::new(1.0, 99);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
        let mut c = ExpSampler::new(1.0, 100);
        assert_ne!(a.sample(), c.sample());
    }

    #[test]
    fn arrival_count_matches_rate() {
        // Mean 1, horizon 1000: expect ~1000 arrivals, sd ~32.
        let mut s = ExpSampler::new(1.0, 3);
        let arrivals = s.arrivals_until(1000.0);
        assert!((arrivals.len() as f64 - 1000.0).abs() < 150.0, "{}", arrivals.len());
        // Sorted and within horizon.
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(arrivals.iter().all(|t| *t < 1000.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_mean() {
        let _ = ExpSampler::new(0.0, 0);
    }
}
