//! # redcr-fault — Poisson-process failure injection
//!
//! Reimplements the paper's fault injector (Section 5). The injector:
//!
//! 1. maintains a mapping of virtual to physical processes;
//! 2. samples, for each physical process, the time of its next failure from
//!    an exponential distribution (failures arrive as a Poisson process,
//!    paper assumption 3);
//! 3. marks processes dead as their failure times pass;
//! 4. triggers application termination — followed by restart from the last
//!    checkpoint — only when **all** physical processes of some virtual
//!    process (a replica *sphere*) are dead.
//!
//! Individual replica failures below sphere level do not stall the job: the
//! surviving replicas carry on (the redundancy property). Spare nodes
//! replace failed ones at restart (paper assumption 5), so each attempt
//! starts with a fully-alive system and fresh failure samples.
//!
//! # Example
//!
//! ```
//! use redcr_fault::{FailureInjector, ReplicaGroups};
//!
//! // 4 virtual processes at dual redundancy: spheres {0,4} {1,5} {2,6} {3,7}.
//! let groups = ReplicaGroups::uniform(4, 2);
//! let mut injector = FailureInjector::new(groups, 3600.0, 42);
//! let plan = injector.plan_attempt(0.0);
//! // The job dies when the first whole sphere is dead — strictly after the
//! // first individual process failure (at dual redundancy).
//! assert!(plan.job_failure_time > plan.first_process_failure);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod injector;
pub mod nodes;
pub mod poisson;
pub mod schedule;
pub mod trace;

pub use injector::{AttemptPlan, FailureInjector};
pub use nodes::NodePlacement;
pub use poisson::ExpSampler;
pub use schedule::{FailureSchedule, ReplicaGroups};
pub use trace::{FailureEvent, FailureTrace};
