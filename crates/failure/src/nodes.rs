//! Node-granularity failures: correlated process deaths.
//!
//! The paper's model (assumption 1, following Schroeder/Gibson) treats the
//! *socket/node* as the unit of failure and notes that its experiments pin
//! 14 application processes per node. A node failure therefore kills all of
//! its processes at once — a correlation the independent per-process model
//! ignores. This module maps node-level exponential failures onto process
//! deaths so both granularities can be compared (the `simulation` bench and
//! the `window` study use the per-process model, as the paper's injector
//! does; this is the ablation counterpart).

use serde::{Deserialize, Serialize};

use crate::poisson::ExpSampler;
use crate::schedule::{FailureSchedule, ReplicaGroups};

/// A placement of physical processes onto nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePlacement {
    /// `node_of[p]` = node hosting physical process `p`.
    node_of: Vec<usize>,
    n_nodes: usize,
}

impl NodePlacement {
    /// Packs processes onto nodes in rank order, `procs_per_node` at a time
    /// (the paper's pinning: 14 application processes per node).
    ///
    /// # Panics
    ///
    /// Panics if `procs_per_node == 0` or `n_physical == 0`.
    pub fn packed(n_physical: usize, procs_per_node: usize) -> Self {
        assert!(procs_per_node > 0, "need at least one process per node");
        assert!(n_physical > 0, "need at least one process");
        let node_of: Vec<usize> = (0..n_physical).map(|p| p / procs_per_node).collect();
        let n_nodes = node_of.last().unwrap() + 1;
        NodePlacement { node_of, n_nodes }
    }

    /// A placement that keeps the replicas of each sphere on *distinct*
    /// nodes (packing primaries first, then shadows, like the replication
    /// layer's rank layout) — replicas sharing a node would die together
    /// and void the redundancy.
    ///
    /// # Panics
    ///
    /// Panics if any sphere has more replicas than there are nodes.
    pub fn anti_affine(groups: &ReplicaGroups, procs_per_node: usize) -> Self {
        let placement = Self::packed(groups.n_physical(), procs_per_node);
        for (v, members) in groups.iter().enumerate() {
            let mut nodes: Vec<usize> = members.iter().map(|&p| placement.node_of[p]).collect();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(
                nodes.len(),
                members.len(),
                "sphere {v} has replicas sharing a node; reduce procs_per_node"
            );
        }
        placement
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of placed processes.
    pub fn n_physical(&self) -> usize {
        self.node_of.len()
    }

    /// The node hosting process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn node_of(&self, p: usize) -> usize {
        self.node_of[p]
    }

    /// Expands node death times into a per-process [`FailureSchedule`]:
    /// every process dies exactly when its node does.
    ///
    /// # Panics
    ///
    /// Panics if `node_deaths.len() != n_nodes()`.
    pub fn expand(&self, node_deaths: &[f64]) -> FailureSchedule {
        assert_eq!(node_deaths.len(), self.n_nodes);
        FailureSchedule { death_times: self.node_of.iter().map(|&n| node_deaths[n]).collect() }
    }

    /// Samples node-level failures (per-node MTBF `sampler.mean()`) and
    /// returns the induced process schedule.
    pub fn sample(&self, sampler: &mut ExpSampler) -> FailureSchedule {
        let node_deaths: Vec<f64> = (0..self.n_nodes).map(|_| sampler.sample()).collect();
        self.expand(&node_deaths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_layout() {
        let p = NodePlacement::packed(10, 4);
        assert_eq!(p.n_nodes(), 3);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(3), 0);
        assert_eq!(p.node_of(4), 1);
        assert_eq!(p.node_of(9), 2);
    }

    #[test]
    fn expand_correlates_deaths() {
        let p = NodePlacement::packed(6, 3);
        let sched = p.expand(&[5.0, 9.0]);
        assert_eq!(sched.death_times, vec![5.0, 5.0, 5.0, 9.0, 9.0, 9.0]);
    }

    #[test]
    fn anti_affinity_holds_for_replica_layout() {
        // 8 virtual at 2x: primaries are processes 0..8, shadows 8..16;
        // with 4 procs/node the primary and shadow of any rank land on
        // different nodes.
        let groups = ReplicaGroups::uniform(8, 2);
        let p = NodePlacement::anti_affine(&groups, 4);
        for v in 0..8 {
            let members = groups.members(v);
            assert_ne!(p.node_of(members[0]), p.node_of(members[1]), "rank {v}");
        }
    }

    #[test]
    #[should_panic(expected = "sharing a node")]
    fn co_located_replicas_rejected() {
        // 2 virtual at 2x on one giant node: replicas share it.
        let groups = ReplicaGroups::uniform(2, 2);
        let _ = NodePlacement::anti_affine(&groups, 4);
    }

    #[test]
    fn node_failures_are_coarser_than_process_failures() {
        // Same total MTBF per unit: node-level failures kill the (1x) job
        // at the rate of n_nodes units, process-level at n_procs units —
        // node granularity yields longer job lifetimes at equal per-unit
        // MTBF because there are fewer failure units.
        let groups = ReplicaGroups::uniform(28, 1);
        let placement = NodePlacement::packed(28, 14); // 2 nodes
        let mut node_sampler = ExpSampler::new(100.0, 1);
        let mut proc_sampler = ExpSampler::new(100.0, 1);
        let n = 2000;
        let node_mean: f64 =
            (0..n).map(|_| placement.sample(&mut node_sampler).job_failure(&groups).0).sum::<f64>()
                / n as f64;
        let proc_mean: f64 = (0..n)
            .map(|_| FailureSchedule::sample(28, &mut proc_sampler).job_failure(&groups).0)
            .sum::<f64>()
            / n as f64;
        // 2 failure units vs 28: expect roughly 14x longer lifetime.
        assert!(node_mean > 8.0 * proc_mean, "node {node_mean} vs process {proc_mean}");
    }
}
