//! Failure event traces for post-run analysis.

use serde::{Deserialize, Serialize};

/// One physical-process failure observed during an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// Attempt in which the failure occurred.
    pub attempt: u64,
    /// Absolute virtual time of the failure, seconds.
    pub time: f64,
    /// The physical process that failed.
    pub process: usize,
    /// Whether this failure completed a sphere and killed the job.
    pub killed_job: bool,
}

/// An append-only log of failure events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailureTrace {
    events: Vec<FailureEvent>,
}

impl FailureTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&mut self, event: FailureEvent) {
        self.events.push(event);
    }

    /// All events, in recording order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of job-killing failures (= number of restarts needed).
    pub fn job_failures(&self) -> usize {
        self.events.iter().filter(|e| e.killed_job).count()
    }

    /// Drops events of `attempt` that occur after `end_time` — used when
    /// an attempt completes before its planned failure materializes, so
    /// never-observed deaths do not pollute the log.
    pub fn truncate_attempt(&mut self, attempt: u64, end_time: f64) {
        self.events.retain(|e| e.attempt != attempt || e.time <= end_time);
    }

    /// The observed failure rate over `[0, horizon]` (events per second).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive.
    pub fn observed_rate(&self, horizon: f64) -> f64 {
        assert!(horizon > 0.0);
        self.events.iter().filter(|e| e.time <= horizon).count() as f64 / horizon
    }
}

impl Extend<FailureEvent> for FailureTrace {
    fn extend<I: IntoIterator<Item = FailureEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, killed: bool) -> FailureEvent {
        FailureEvent { attempt: 0, time, process: 0, killed_job: killed }
    }

    #[test]
    fn records_and_counts() {
        let mut t = FailureTrace::new();
        assert!(t.is_empty());
        t.record(ev(1.0, false));
        t.record(ev(2.0, true));
        t.record(ev(3.0, true));
        assert_eq!(t.len(), 3);
        assert_eq!(t.job_failures(), 2);
    }

    #[test]
    fn truncate_attempt_prunes_future_events() {
        let mut t = FailureTrace::new();
        t.extend([
            FailureEvent { attempt: 0, time: 1.0, process: 0, killed_job: false },
            FailureEvent { attempt: 1, time: 5.0, process: 1, killed_job: false },
            FailureEvent { attempt: 1, time: 9.0, process: 2, killed_job: true },
        ]);
        t.truncate_attempt(1, 6.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.job_failures(), 0);
        // Other attempts untouched.
        assert_eq!(t.events()[0].attempt, 0);
    }

    #[test]
    fn observed_rate_windows() {
        let mut t = FailureTrace::new();
        t.extend([ev(1.0, false), ev(2.0, false), ev(50.0, false)]);
        assert!((t.observed_rate(10.0) - 0.2).abs() < 1e-12);
        assert!((t.observed_rate(100.0) - 0.03).abs() < 1e-12);
    }
}
