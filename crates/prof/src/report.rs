//! The drained profiling result and its three export formats: JSON
//! sidecar, inferno folded stacks, and Perfetto counter-track data.

use std::fmt::Write as _;

use crate::keys::{CounterKey, SpanKey, TrackKey};
use crate::registry::ProfScope;
use crate::shard::{ProfDrain, TrackSample};

/// Read-only statistics of one span key.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds across all entries.
    pub total_ns: u64,
    /// Longest single entry, nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    /// Mean nanoseconds per entry (0 when never entered).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// One scope's (driver / rank / worker) drained profile.
#[derive(Debug)]
pub struct ScopeProf {
    label: String,
    drain: ProfDrain,
}

impl ScopeProf {
    /// The scope's stable label (`driver`, `rank3`, `worker0`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Statistics of one span key on this scope.
    pub fn span(&self, key: SpanKey) -> SpanStat {
        let c = self.drain.spans[key.index()];
        SpanStat { count: c.count, total_ns: c.total_ns, max_ns: c.max_ns }
    }

    /// Value of one counter on this scope.
    pub fn counter(&self, key: CounterKey) -> u64 {
        self.drain.counters[key.index()]
    }

    /// Samples of one counter track on this scope.
    pub fn track(&self, key: TrackKey) -> &[TrackSample] {
        &self.drain.tracks[key.index()]
    }

    /// Track samples discarded because the per-track cap was hit.
    pub fn samples_dropped(&self) -> u64 {
        self.drain.samples_dropped
    }
}

/// One counter track flattened for the Perfetto export: the scope label,
/// the track name, and (nanosecond, value) samples in record order.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTrackData {
    /// Owning scope label (`rank0`, ...).
    pub scope: String,
    /// Track name (`queue_depth`, `parks`).
    pub name: &'static str,
    /// Samples: wall-clock nanoseconds since the profiler origin, value.
    pub samples: Vec<(u64, f64)>,
}

/// The final, drained profiling result.
#[derive(Debug)]
pub struct ProfReport {
    scopes: Vec<ScopeProf>,
}

impl ProfReport {
    pub(crate) fn new(scopes: Vec<(ProfScope, ProfDrain)>) -> Self {
        ProfReport {
            scopes: scopes
                .into_iter()
                .map(|(scope, drain)| ScopeProf { label: scope.label(), drain })
                .collect(),
        }
    }

    /// Per-scope profiles, sorted driver → ranks → workers.
    pub fn scopes(&self) -> &[ScopeProf] {
        &self.scopes
    }

    /// Aggregate statistics of one span key across every scope.
    pub fn total_span(&self, key: SpanKey) -> SpanStat {
        let mut out = SpanStat::default();
        for s in &self.scopes {
            let st = s.span(key);
            out.count += st.count;
            out.total_ns += st.total_ns;
            out.max_ns = out.max_ns.max(st.max_ns);
        }
        out
    }

    /// Aggregate value of one counter across every scope.
    pub fn total_counter(&self, key: CounterKey) -> u64 {
        self.scopes.iter().map(|s| s.counter(key)).sum()
    }

    /// One-line human summary of the parking behaviour — the headline
    /// number for the M:N scheduler baseline.
    pub fn park_summary(&self) -> String {
        let park = self.total_span(SpanKey::MailboxPark);
        let wait = self.total_span(SpanKey::MailboxRecvWait);
        format!(
            "parks={} wakes={} spin_resolved={} park_resolved={} parked={:.3}ms of {:.3}ms recv-wait",
            self.total_counter(CounterKey::Parks),
            self.total_counter(CounterKey::Wakes),
            self.total_counter(CounterKey::SpinResolved),
            self.total_counter(CounterKey::ParkResolved),
            park.total_ns as f64 / 1e6,
            wait.total_ns as f64 / 1e6,
        )
    }

    /// One-line human summary of the M:N scheduler — how rank tasks moved
    /// between run queues and how busy the workers were.
    pub fn sched_summary(&self) -> String {
        let idle = self.total_span(SpanKey::WorkerIdle);
        format!(
            "task_wakes={} local_hits={} steals={} worker_parks={} idle={:.3}ms",
            self.total_counter(CounterKey::TaskWakes),
            self.total_counter(CounterKey::LocalHits),
            self.total_counter(CounterKey::Steals),
            self.total_counter(CounterKey::WorkerParks),
            idle.total_ns as f64 / 1e6,
        )
    }

    /// Renders the JSON sidecar (`redcr-prof/1` schema): aggregate span
    /// and counter tables (every key, zeros included, so the shape is
    /// stable) plus sparse per-scope breakdowns.
    pub fn to_json(&self, scenario: &str) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"redcr-prof/1\",\n");
        let _ = writeln!(out, "  \"scenario\": {},", quote(scenario));
        out.push_str("  \"totals\": {\n");
        out.push_str("    \"spans\": {\n");
        for (i, key) in SpanKey::ALL.iter().enumerate() {
            let st = self.total_span(*key);
            let _ = write!(
                out,
                "      {}: {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}}}",
                quote(key.name()),
                st.count,
                st.total_ns,
                st.max_ns,
                num(st.mean_ns()),
            );
            out.push_str(if i + 1 < SpanKey::COUNT { ",\n" } else { "\n" });
        }
        out.push_str("    },\n");
        out.push_str("    \"counters\": {\n");
        for (i, key) in CounterKey::ALL.iter().enumerate() {
            let _ = write!(out, "      {}: {}", quote(key.name()), self.total_counter(*key));
            out.push_str(if i + 1 < CounterKey::COUNT { ",\n" } else { "\n" });
        }
        out.push_str("    }\n  },\n");
        out.push_str("  \"scopes\": [\n");
        for (i, scope) in self.scopes.iter().enumerate() {
            let _ = write!(out, "    {{\"scope\": {}, \"spans\": {{", quote(scope.label()));
            let mut first = true;
            for key in SpanKey::ALL {
                let st = scope.span(key);
                if st.count == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(
                    out,
                    "{}: {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                    quote(key.name()),
                    st.count,
                    st.total_ns,
                    st.max_ns,
                );
            }
            out.push_str("}, \"counters\": {");
            let mut first = true;
            for key in CounterKey::ALL {
                let v = scope.counter(key);
                if v == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "{}: {}", quote(key.name()), v);
            }
            let _ = write!(out, "}}, \"samples_dropped\": {}}}", scope.samples_dropped());
            out.push_str(if i + 1 < self.scopes.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders inferno-compatible folded stacks, one line per scope and
    /// span key with nonzero self-time: `scope;frame;frame <nanoseconds>`.
    ///
    /// Spans are independent instruments, not a sampled call-stack; the
    /// only containment the export accounts for is the declared
    /// [`SpanKey::parent`] relation (park time is subtracted from its
    /// enclosing receive wait), so sibling spans that happen to overlap
    /// render side by side.
    pub fn folded(&self) -> String {
        let mut out = String::with_capacity(1024);
        for scope in &self.scopes {
            for key in SpanKey::ALL {
                let st = scope.span(key);
                if st.count == 0 {
                    continue;
                }
                let child_ns: u64 = SpanKey::ALL
                    .iter()
                    .filter(|k| k.parent() == Some(key))
                    .map(|k| scope.span(*k).total_ns)
                    .sum();
                let self_ns = st.total_ns.saturating_sub(child_ns);
                if self_ns == 0 {
                    continue;
                }
                let _ = writeln!(out, "{};{} {}", scope.label(), key.stack(), self_ns);
            }
        }
        out
    }

    /// Flattens every nonempty counter track for the Perfetto export.
    pub fn counter_tracks(&self) -> Vec<CounterTrackData> {
        let mut out = Vec::new();
        for scope in &self.scopes {
            for key in TrackKey::ALL {
                let samples = scope.track(key);
                if samples.is_empty() {
                    continue;
                }
                out.push(CounterTrackData {
                    scope: scope.label().to_owned(),
                    name: key.name(),
                    samples: samples.iter().map(|s| (s.at_ns, s.value)).collect(),
                });
            }
        }
        out
    }

    /// Whether nothing at all was recorded (profiling hooked up but the
    /// run had no instrumented activity).
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    /// Internal scope lookup used by the scope accessor in tests/tools.
    pub fn scope(&self, label: &str) -> Option<&ScopeProf> {
        self.scopes.iter().find(|s| s.label == label)
    }
}

// Tiny handwritten-JSON helpers, same conventions as the other handwritten
// exports in this workspace (the workspace vendors no JSON library).

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use crate::{CounterKey, ProfScope, Profiler, SpanKey, TrackKey};

    fn sample_report() -> crate::ProfReport {
        let p = Profiler::new();
        let s = p.shard();
        {
            let _wait = s.span(SpanKey::MailboxRecvWait);
            let _park = s.span(SpanKey::MailboxPark);
        }
        s.count(CounterKey::Parks);
        s.count(CounterKey::Wakes);
        s.sample(TrackKey::QueueDepth, 2.0);
        p.absorb(ProfScope::Rank(0), s.drain());
        p.report()
    }

    #[test]
    fn json_sidecar_has_schema_and_all_keys() {
        let json = sample_report().to_json("unit");
        assert!(json.contains("\"schema\": \"redcr-prof/1\""));
        assert!(json.contains("\"scenario\": \"unit\""));
        for key in SpanKey::ALL {
            assert!(json.contains(&format!("\"{}\"", key.name())), "{}", key.name());
        }
        for key in CounterKey::ALL {
            assert!(json.contains(&format!("\"{}\"", key.name())), "{}", key.name());
        }
    }

    #[test]
    fn folded_lines_are_scope_prefixed_with_weights() {
        let folded = sample_report().folded();
        for line in folded.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("weight separator");
            assert!(stack.starts_with("rank0;"), "{line}");
            weight.parse::<u64>().expect("integer nanosecond weight");
        }
        assert!(folded.contains("rank0;mailbox;recv_wait;park "));
    }

    #[test]
    fn counter_tracks_flatten_nonempty_only() {
        let tracks = sample_report().counter_tracks();
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].scope, "rank0");
        assert_eq!(tracks[0].name, "queue_depth");
        assert_eq!(tracks[0].samples.len(), 1);
    }
}
