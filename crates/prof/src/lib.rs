//! # redcr-prof — wall-clock self-profiling for the redcr stack
//!
//! Every other observability layer in this workspace (`redcr-trace`,
//! `redcr-metrics`, the Perfetto export) watches the **simulated** machine
//! in virtual time. This crate watches the **simulator** in wall-clock
//! time: how long the real OS threads spend parked on mailbox condvars,
//! spinning, encoding checkpoints, voting, or running sweep workers. Its
//! first deliverable is the measured parking/context-switch baseline the
//! planned M:N rank scheduler will be judged against.
//!
//! ## Design
//!
//! The shard/registry split mirrors `redcr-metrics` exactly:
//!
//! * [`RankProf`] is a rank-thread-local shard — `Send` but not `Sync`,
//!   all-`Cell` on the hot path, drained once at rank teardown. Spans are
//!   measured with RAII [`SpanGuard`]s over [`std::time::Instant`].
//! * [`Profiler`] is the shared registry: a `Mutex` that is only locked at
//!   absorb (teardown) and report time, never on a hot path, so it adds no
//!   edge to the workspace lock graph.
//! * [`ProfReport`] is the drained, per-scope result, exportable as a
//!   handwritten JSON sidecar ([`ProfReport::to_json`]) and as
//!   inferno-compatible folded-stack text ([`ProfReport::folded`]) for
//!   flamegraphs; [`ProfReport::counter_tracks`] feeds Perfetto counter
//!   tracks (queue depth, cumulative parks).
//!
//! ## Determinism contract
//!
//! This crate is the *only* non-bench crate allowed to read the host
//! clock; it lives in the `wallclock` detlint domain. Callers hold shards
//! behind `Option<Rc<RankProf>>` hooks that cost one `Option` check when
//! profiling is off, and no wall-clock reading here ever feeds back into a
//! virtual clock — profiler-off runs are bit-identical, profiler-on runs
//! perturb nothing but wall time.

// Wall-clock reads are this crate's entire purpose; it opts out of the
// workspace-wide clippy bans the same way the bench harness does.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod keys;
mod registry;
mod report;
mod shard;

pub use keys::{CounterKey, SpanKey, TrackKey};
pub use registry::{ProfScope, Profiler};
pub use report::{CounterTrackData, ProfReport, ScopeProf, SpanStat};
pub use shard::{ProfDrain, RankProf, SpanGuard, TrackSample};
