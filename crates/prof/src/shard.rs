//! The rank-thread-local shard: all-`Cell` span and counter storage with
//! RAII scope guards, drained once at teardown — the same idiom as
//! `redcr_metrics::RankMetrics`.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use crate::keys::{CounterKey, SpanKey, TrackKey};

/// Per-track sample cap per shard. Counter tracks are a visual aid, not
/// an accounting plane; past the cap further samples are counted in
/// [`ProfDrain::samples_dropped`] and discarded.
const MAX_SAMPLES: usize = 8192;

/// Aggregated statistics of one span key on one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SpanCell {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

impl SpanCell {
    pub(crate) fn merge(&mut self, other: SpanCell) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One timestamped counter-track sample: nanoseconds since the owning
/// [`Profiler`](crate::Profiler)'s origin, and the sampled value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackSample {
    /// Wall-clock nanoseconds since the profiler was created.
    pub at_ns: u64,
    /// Sampled value.
    pub value: f64,
}

/// A rank-thread-local profiling shard.
///
/// `Send` but not `Sync`: it is created by
/// [`Profiler::shard`](crate::Profiler::shard), moved onto one OS thread,
/// updated through
/// `&self` via interior mutability, and [`drain`](Self::drain)ed exactly
/// once at teardown. Recording on the hot path touches only `Cell`s — no
/// locks, no allocation (track samples amortize through a pre-grown
/// `Vec`).
#[derive(Debug)]
pub struct RankProf {
    origin: Instant,
    spans: [Cell<SpanCell>; SpanKey::COUNT],
    counters: [Cell<u64>; CounterKey::COUNT],
    tracks: RefCell<[Vec<TrackSample>; TrackKey::COUNT]>,
    samples_dropped: Cell<u64>,
}

impl RankProf {
    pub(crate) fn new(origin: Instant) -> Self {
        RankProf {
            origin,
            spans: Default::default(),
            counters: Default::default(),
            tracks: RefCell::new(Default::default()),
            samples_dropped: Cell::new(0),
        }
    }

    /// Opens a wall-clock span; the guard records its elapsed time into
    /// this shard when dropped.
    #[inline]
    pub fn span(&self, key: SpanKey) -> SpanGuard<'_> {
        SpanGuard { prof: self, key, start: Instant::now() }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn count(&self, key: CounterKey) {
        self.add(key, 1);
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn add(&self, key: CounterKey, n: u64) {
        let cell = &self.counters[key.index()];
        cell.set(cell.get() + n);
    }

    /// Current value of a counter (used to sample cumulative tracks).
    #[inline]
    pub fn counter(&self, key: CounterKey) -> u64 {
        self.counters[key.index()].get()
    }

    /// Appends one timestamped sample to a counter track.
    #[inline]
    pub fn sample(&self, key: TrackKey, value: f64) {
        let mut tracks = self.tracks.borrow_mut();
        let buf = &mut tracks[key.index()];
        if buf.len() >= MAX_SAMPLES {
            self.samples_dropped.set(self.samples_dropped.get() + 1);
            return;
        }
        let at_ns = duration_ns(self.origin.elapsed());
        buf.push(TrackSample { at_ns, value });
    }

    fn record(&self, key: SpanKey, elapsed_ns: u64) {
        let cell = &self.spans[key.index()];
        let mut s = cell.get();
        s.count += 1;
        s.total_ns += elapsed_ns;
        s.max_ns = s.max_ns.max(elapsed_ns);
        cell.set(s);
    }

    /// Takes everything recorded so far, leaving the shard empty. Called
    /// once at rank teardown; the result is absorbed into the shared
    /// [`Profiler`](crate::Profiler).
    pub fn drain(&self) -> ProfDrain {
        let mut spans = [SpanCell::default(); SpanKey::COUNT];
        for (slot, cell) in spans.iter_mut().zip(&self.spans) {
            *slot = cell.replace(SpanCell::default());
        }
        let mut counters = [0u64; CounterKey::COUNT];
        for (slot, cell) in counters.iter_mut().zip(&self.counters) {
            *slot = cell.replace(0);
        }
        let tracks = std::mem::take(&mut *self.tracks.borrow_mut());
        ProfDrain { spans, counters, tracks, samples_dropped: self.samples_dropped.replace(0) }
    }
}

/// RAII wall-clock scope guard returned by [`RankProf::span`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    prof: &'a RankProf,
    key: SpanKey,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.prof.record(self.key, duration_ns(self.start.elapsed()));
    }
}

/// The drained contents of one shard.
#[derive(Debug)]
pub struct ProfDrain {
    pub(crate) spans: [SpanCell; SpanKey::COUNT],
    pub(crate) counters: [u64; CounterKey::COUNT],
    pub(crate) tracks: [Vec<TrackSample>; TrackKey::COUNT],
    /// Track samples discarded because a shard hit its per-track cap.
    pub(crate) samples_dropped: u64,
}

impl ProfDrain {
    pub(crate) fn merge(&mut self, other: ProfDrain) {
        for (slot, s) in self.spans.iter_mut().zip(other.spans) {
            slot.merge(s);
        }
        for (slot, c) in self.counters.iter_mut().zip(other.counters) {
            *slot += c;
        }
        for (buf, mut extra) in self.tracks.iter_mut().zip(other.tracks) {
            let room = MAX_SAMPLES.saturating_sub(buf.len());
            if extra.len() > room {
                self.samples_dropped += (extra.len() - room) as u64;
                extra.truncate(room);
            }
            buf.append(&mut extra);
        }
        self.samples_dropped += other.samples_dropped;
    }
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_records_on_drop() {
        let p = RankProf::new(Instant::now());
        {
            let _g = p.span(SpanKey::MailboxPark);
        }
        let d = p.drain();
        assert_eq!(d.spans[SpanKey::MailboxPark.index()].count, 1);
    }

    #[test]
    fn drain_empties_the_shard() {
        let p = RankProf::new(Instant::now());
        p.count(CounterKey::Parks);
        p.sample(TrackKey::QueueDepth, 3.0);
        let d = p.drain();
        assert_eq!(d.counters[CounterKey::Parks.index()], 1);
        assert_eq!(d.tracks[TrackKey::QueueDepth.index()].len(), 1);
        let d2 = p.drain();
        assert_eq!(d2.counters[CounterKey::Parks.index()], 0);
        assert!(d2.tracks[TrackKey::QueueDepth.index()].is_empty());
    }

    #[test]
    fn sample_cap_counts_drops() {
        let p = RankProf::new(Instant::now());
        for i in 0..(MAX_SAMPLES + 5) {
            p.sample(TrackKey::Parks, i as f64);
        }
        let d = p.drain();
        assert_eq!(d.tracks[TrackKey::Parks.index()].len(), MAX_SAMPLES);
        assert_eq!(d.samples_dropped, 5);
    }
}
