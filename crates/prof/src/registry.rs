//! The shared registry: hands out shards, absorbs their drains at
//! teardown, and produces the final [`ProfReport`].

use std::sync::Mutex;
use std::time::Instant;

use crate::report::ProfReport;
use crate::shard::{ProfDrain, RankProf};

/// Who a drained shard belonged to. Scopes order deterministically
/// (driver, then ranks, then workers) regardless of teardown order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProfScope {
    /// The executor driver thread (segment loop, heal cycles).
    Driver,
    /// One physical rank thread of the simulated world.
    Rank(u32),
    /// One sweep-engine worker thread.
    Worker(u32),
}

impl ProfScope {
    /// Stable label used in the JSON sidecar and folded-stack frames.
    pub fn label(&self) -> String {
        match self {
            ProfScope::Driver => "driver".to_owned(),
            ProfScope::Rank(r) => format!("rank{r}"),
            ProfScope::Worker(w) => format!("worker{w}"),
        }
    }
}

/// The shared wall-clock profiler.
///
/// Mirrors `redcr_metrics::MetricsRegistry`: rank threads record into
/// their own lock-free [`RankProf`] shards and absorb them here exactly
/// once at teardown, so the internal `Mutex` is never taken on a hot path
/// and never nests with any other workspace lock.
#[derive(Debug)]
pub struct Profiler {
    origin: Instant,
    inner: Mutex<Vec<(ProfScope, ProfDrain)>>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// Creates an empty profiler; its creation instant is the origin all
    /// counter-track timestamps are relative to.
    pub fn new() -> Self {
        Profiler { origin: Instant::now(), inner: Mutex::new(Vec::new()) }
    }

    /// Creates a fresh shard sharing this profiler's time origin. Move it
    /// onto the recording thread and [`absorb`](Self::absorb) its drain at
    /// teardown.
    pub fn shard(&self) -> RankProf {
        RankProf::new(self.origin)
    }

    /// Absorbs one drained shard. Repeated absorbs for the same scope
    /// merge (a rank thread per attempt, say).
    pub fn absorb(&self, scope: ProfScope, drain: ProfDrain) {
        let mut inner = self.inner.lock().expect("profiler poisoned");
        if let Some((_, slot)) = inner.iter_mut().find(|(s, _)| *s == scope) {
            slot.merge(drain);
        } else {
            inner.push((scope, drain));
        }
    }

    /// Drains everything absorbed so far into a report, sorted by scope.
    pub fn report(&self) -> ProfReport {
        let mut scopes = std::mem::take(&mut *self.inner.lock().expect("profiler poisoned"));
        scopes.sort_by_key(|(s, _)| *s);
        ProfReport::new(scopes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::CounterKey;

    #[test]
    fn absorb_merges_same_scope_and_sorts() {
        let p = Profiler::new();
        let s = p.shard();
        s.count(CounterKey::Parks);
        p.absorb(ProfScope::Rank(3), s.drain());
        s.count(CounterKey::Parks);
        s.count(CounterKey::Parks);
        p.absorb(ProfScope::Rank(3), s.drain());
        let d = p.shard();
        d.count(CounterKey::Wakes);
        p.absorb(ProfScope::Driver, d.drain());

        let report = p.report();
        let labels: Vec<_> = report.scopes().iter().map(|s| s.label().to_owned()).collect();
        assert_eq!(labels, ["driver", "rank3"]);
        assert_eq!(report.total_counter(CounterKey::Parks), 3);
        assert_eq!(report.total_counter(CounterKey::Wakes), 1);
    }
}
