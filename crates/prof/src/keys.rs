//! Static identifiers for the instrumented sites: wall-clock spans,
//! monotonic counters, and counter-track sample streams.

/// One instrumented wall-clock span site.
///
/// Spans are independent instruments, not a call-stack: a key's
/// [`stack`](Self::stack) is the fixed frame path it renders under in the
/// folded-stack export, and [`parent`](Self::parent) declares the one
/// containment relation the export subtracts for self-time (a mailbox park
/// always happens inside a mailbox receive wait).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKey {
    /// One `Mailbox::push` by a sender (lock, enqueue, notify decision).
    MailboxSend,
    /// One blocking mailbox wait, spin phase included, match to return.
    MailboxRecvWait,
    /// One condvar park inside a mailbox wait (wait entry to wake).
    MailboxPark,
    /// Serializing application state into a checkpoint image.
    CheckpointEncode,
    /// Checkpoint commit: the post-barrier store of an encoded image.
    CheckpointCommit,
    /// One receive-path vote over the redundant copies of a message.
    Vote,
    /// One executor segment: a full `ReplicatedWorld::run` invocation.
    ExecutorSegment,
    /// One executor heal cycle (respawn + state-transfer bookkeeping).
    ExecutorHeal,
    /// One sweep-engine scenario evaluation on a worker thread.
    SweepScenario,
    /// A scheduler worker asleep on the idle condvar (no runnable tasks).
    WorkerIdle,
}

impl SpanKey {
    /// Number of span keys.
    pub const COUNT: usize = 10;

    /// Every key, in index order.
    pub const ALL: [SpanKey; Self::COUNT] = [
        SpanKey::MailboxSend,
        SpanKey::MailboxRecvWait,
        SpanKey::MailboxPark,
        SpanKey::CheckpointEncode,
        SpanKey::CheckpointCommit,
        SpanKey::Vote,
        SpanKey::ExecutorSegment,
        SpanKey::ExecutorHeal,
        SpanKey::SweepScenario,
        SpanKey::WorkerIdle,
    ];

    /// Dense array index of this key.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable dotted name used in the JSON sidecar.
    pub fn name(self) -> &'static str {
        match self {
            SpanKey::MailboxSend => "mailbox.send",
            SpanKey::MailboxRecvWait => "mailbox.recv_wait",
            SpanKey::MailboxPark => "mailbox.park",
            SpanKey::CheckpointEncode => "checkpoint.encode",
            SpanKey::CheckpointCommit => "checkpoint.commit",
            SpanKey::Vote => "vote",
            SpanKey::ExecutorSegment => "executor.segment",
            SpanKey::ExecutorHeal => "executor.heal",
            SpanKey::SweepScenario => "sweep.scenario",
            SpanKey::WorkerIdle => "worker.idle",
        }
    }

    /// Semicolon-joined frame path (scope prefix excluded) used in the
    /// inferno folded-stack export.
    pub fn stack(self) -> &'static str {
        match self {
            SpanKey::MailboxSend => "mailbox;send",
            SpanKey::MailboxRecvWait => "mailbox;recv_wait",
            SpanKey::MailboxPark => "mailbox;recv_wait;park",
            SpanKey::CheckpointEncode => "checkpoint;encode",
            SpanKey::CheckpointCommit => "checkpoint;commit",
            SpanKey::Vote => "vote",
            SpanKey::ExecutorSegment => "executor;segment",
            SpanKey::ExecutorHeal => "executor;heal",
            SpanKey::SweepScenario => "sweep;scenario",
            SpanKey::WorkerIdle => "worker;idle",
        }
    }

    /// The span this one is always nested inside, if any. The folded
    /// export subtracts a child's total from its parent to render parent
    /// self-time.
    pub fn parent(self) -> Option<SpanKey> {
        match self {
            SpanKey::MailboxPark => Some(SpanKey::MailboxRecvWait),
            _ => None,
        }
    }
}

/// One monotonic profiler counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CounterKey {
    /// Condvar parks entered by mailbox waits.
    Parks,
    /// Returns from a condvar park (spurious wakeups included).
    Wakes,
    /// `notify_one` calls fired by senders toward a registered waiter.
    Notifies,
    /// Mailbox waits satisfied during the bounded spin phase.
    SpinResolved,
    /// Mailbox waits that had to park at least once before matching.
    ParkResolved,
    /// Physical sends pushed through instrumented mailboxes.
    Sends,
    /// Physical receives completed through instrumented mailboxes.
    Recvs,
    /// Parked rank tasks marked runnable by a matching send (M:N
    /// scheduler wake; counted on the sender's scope).
    TaskWakes,
    /// Rank tasks a scheduler worker stole from another worker's deque.
    Steals,
    /// Rank tasks a scheduler worker popped from its own deque.
    LocalHits,
    /// Times a scheduler worker slept on the idle condvar.
    WorkerParks,
}

impl CounterKey {
    /// Number of counter keys.
    pub const COUNT: usize = 11;

    /// Every key, in index order.
    pub const ALL: [CounterKey; Self::COUNT] = [
        CounterKey::Parks,
        CounterKey::Wakes,
        CounterKey::Notifies,
        CounterKey::SpinResolved,
        CounterKey::ParkResolved,
        CounterKey::Sends,
        CounterKey::Recvs,
        CounterKey::TaskWakes,
        CounterKey::Steals,
        CounterKey::LocalHits,
        CounterKey::WorkerParks,
    ];

    /// Dense array index of this key.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable name used in the JSON sidecar and Perfetto tracks.
    pub fn name(self) -> &'static str {
        match self {
            CounterKey::Parks => "parks",
            CounterKey::Wakes => "wakes",
            CounterKey::Notifies => "notifies",
            CounterKey::SpinResolved => "spin_resolved",
            CounterKey::ParkResolved => "park_resolved",
            CounterKey::Sends => "sends",
            CounterKey::Recvs => "recvs",
            CounterKey::TaskWakes => "task_wakes",
            CounterKey::Steals => "steals",
            CounterKey::LocalHits => "local_hits",
            CounterKey::WorkerParks => "worker_parks",
        }
    }
}

/// One timeline sample stream rendered as a Perfetto counter track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrackKey {
    /// Mailbox queue depth observed by the sender after each push.
    QueueDepth,
    /// Cumulative parks on this scope (the track's slope is the park
    /// rate).
    Parks,
    /// Scheduler run-queue depth observed by a worker after each local
    /// pop.
    RunQueueDepth,
}

impl TrackKey {
    /// Number of track keys.
    pub const COUNT: usize = 3;

    /// Every key, in index order.
    pub const ALL: [TrackKey; Self::COUNT] =
        [TrackKey::QueueDepth, TrackKey::Parks, TrackKey::RunQueueDepth];

    /// Dense array index of this key.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable track name used in the JSON sidecar and Perfetto export.
    pub fn name(self) -> &'static str {
        match self {
            TrackKey::QueueDepth => "queue_depth",
            TrackKey::Parks => "parks",
            TrackKey::RunQueueDepth => "run_queue_depth",
        }
    }
}
