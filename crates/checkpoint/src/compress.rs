//! Checkpoint compression (paper Section 2, "checkpoint compression"):
//! reduces checkpoint latency by shrinking process images before they hit
//! stable storage.
//!
//! The codec here is a byte-oriented run-length scheme tuned for process
//! images, which are dominated by long zero runs (untouched allocations,
//! excluded regions — see [`crate::exclusion`]). Literal stretches are
//! copied verbatim with a length prefix, so incompressible data costs only
//! ~1/127 overhead.
//!
//! Wire format: a sequence of blocks, each starting with a control byte
//! `c`: `c >= 0x80` ⇒ a run of `c - 0x7d` (3..=130) copies of the next
//! byte; `c < 0x80` ⇒ `c + 1` (1..=128) literal bytes follow.

use crate::error::CkptError;
use crate::Result;

const MIN_RUN: usize = 3;
const MAX_RUN: usize = 130;
const MAX_LITERAL: usize = 128;

/// Compresses `data` with run-length encoding.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut i = 0;
    let mut literal_start = 0;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, data: &[u8]| {
        let mut start = from;
        // detlint::allow(R10, reason = "bounded CPU loop: start advances by at least one chunk per iteration toward a fixed `to`; encoding a snapshot is finite work charged to the checkpoint, not a wait")
        while start < to {
            let chunk = (to - start).min(MAX_LITERAL);
            out.push((chunk - 1) as u8);
            out.extend_from_slice(&data[start..start + chunk]);
            start += chunk;
        }
    };

    // detlint::allow(R10, reason = "bounded CPU loop: i strictly advances to data.len(); RLE encoding is finite per-snapshot work, not a wait")
    while i < data.len() {
        // Measure the run starting at i.
        let b = data[i];
        let mut run = 1;
        // detlint::allow(R10, reason = "bounded CPU loop: run grows to at most MAX_RUN or the end of data")
        while i + run < data.len() && data[i + run] == b && run < MAX_RUN {
            run += 1;
        }
        if run >= MIN_RUN {
            flush_literals(&mut out, literal_start, i, data);
            out.push((run - MIN_RUN + 0x80) as u8);
            out.push(b);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, literal_start, data.len(), data);
    out
}

/// Decompresses data produced by [`compress`].
///
/// # Errors
///
/// Returns [`CkptError::Codec`] on truncated or malformed input.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0;
    while i < data.len() {
        let c = data[i];
        i += 1;
        if c >= 0x80 {
            let run = (c - 0x80) as usize + MIN_RUN;
            let b = *data.get(i).ok_or_else(|| CkptError::Codec("rle: truncated run".into()))?;
            i += 1;
            out.resize(out.len() + run, b);
        } else {
            let len = c as usize + 1;
            let end = i + len;
            if end > data.len() {
                return Err(CkptError::Codec("rle: truncated literal block".into()));
            }
            out.extend_from_slice(&data[i..end]);
            i = end;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_small() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"aab");
        round_trip(b"aaab");
    }

    #[test]
    fn zero_heavy_images_shrink() {
        let mut img = vec![0u8; 100_000];
        img[5000] = 42;
        img[70_000..70_016].copy_from_slice(b"realdata12345678");
        let c = compress(&img);
        assert!(c.len() < img.len() / 50, "compressed {} of {}", c.len(), img.len());
        round_trip(&img);
    }

    #[test]
    fn incompressible_data_bounded_overhead() {
        // Pseudo-random bytes: no runs of length >= 3.
        let data: Vec<u8> =
            (0..10_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8 ^ (i as u8)).collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 100 + 16);
        round_trip(&data);
    }

    #[test]
    fn long_runs_split_correctly() {
        round_trip(&[7u8; MAX_RUN]);
        round_trip(&[7u8; MAX_RUN + 1]);
        round_trip(&vec![7u8; 3 * MAX_RUN + 2]);
        round_trip(&vec![0u8; 1 << 20]);
    }

    #[test]
    fn literal_blocks_split_correctly() {
        let data: Vec<u8> = (0..MAX_LITERAL as u16 * 3 + 5).map(|i| (i % 251) as u8).collect();
        round_trip(&data);
    }

    #[test]
    fn mixed_content() {
        let mut data = Vec::new();
        for i in 0..50 {
            data.extend_from_slice(&vec![i as u8; i % 7 + 1]);
            data.extend_from_slice(b"literal");
            data.extend_from_slice(&vec![0u8; i * 3]);
        }
        round_trip(&data);
    }

    #[test]
    fn truncated_inputs_rejected() {
        let c = compress(&[9u8; 100]);
        assert!(decompress(&c[..1]).is_err());
        assert!(decompress(&[0x05]).is_err()); // promises 6 literals, has none
    }
}
