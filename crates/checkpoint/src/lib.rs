//! # redcr-ckpt — coordinated checkpoint/restart for `redcr-mpi` worlds
//!
//! The C/R substrate of the `redcr` reproduction of *Combining Partial
//! Redundancy and Checkpointing for HPC* (ICDCS 2012). The paper uses BLCR
//! (a system-level single-process checkpointer) underneath Open MPI's
//! coordinated checkpoint service; this crate provides the equivalent
//! building blocks for applications running on the simulated runtime:
//!
//! * [`codec`] — a compact, non-self-describing binary serde format (the
//!   role bincode plays in real systems) so any `Serialize` application
//!   state can become a process image.
//! * [`snapshot`] — process images: application state + drained channel
//!   state + the virtual time of the cut.
//! * [`storage`] — stable-storage backends (in-memory and on-disk) with a
//!   write/read **cost model** that yields the paper's checkpoint cost `c`
//!   and restart cost `R` in virtual time.
//! * [`counting`] — a message-counting communicator wrapper (the PML-level
//!   bookkeeping Open MPI's bookmark protocol relies on).
//! * [`bookmark`] — the all-to-all *bookmark exchange* quiesce protocol
//!   used by Open MPI: ranks exchange per-peer send totals and drain until
//!   the totals equalize.
//! * [`chandy_lamport`] — the classic distributed-snapshot marker protocol
//!   as the alternative coordination strategy.
//! * [`incremental`] — page-level incremental checkpoints with full-image
//!   reconstruction.
//! * [`compress`] — run-length checkpoint compression.
//! * [`exclusion`] — memory-exclusion regions (skip scratch buffers).
//! * [`coordinator`] — ties it together: quiesce, snapshot, store, and
//!   charge the checkpoint cost to virtual time.
//! * [`restart`] — locating and loading the latest complete checkpoint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bookmark;
pub mod chandy_lamport;
pub mod codec;
pub mod compress;
pub mod coordinator;
pub mod counting;
pub mod exclusion;
pub mod incremental;
pub mod restart;
pub mod snapshot;
pub mod storage;

mod error;

pub use codec::{from_bytes, to_bytes};
pub use coordinator::{CheckpointCoordinator, CoordinationProtocol, WriteMode};
pub use counting::CountingComm;
pub use error::CkptError;
pub use snapshot::ProcessImage;
pub use storage::{DiskStorage, MemoryStorage, SnapshotKey, StableStorage, StorageCostModel};

/// Result alias for checkpoint operations.
pub type Result<T> = std::result::Result<T, CkptError>;
