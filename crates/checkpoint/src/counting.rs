//! A message-counting communicator wrapper — the PML-level bookkeeping that
//! coordinated checkpointing relies on.
//!
//! Open MPI's checkpoint service tracks "all messages moving in and out of
//! the point-to-point stack" (paper Section 2). [`CountingComm`] does the
//! same for our runtime: it counts user-namespace messages per peer, and
//! keeps a *stash* of messages that a coordination protocol drained from
//! the transport before they were matched by the application. Subsequent
//! application receives consume the stash first, so draining is invisible
//! to the application — and the stash is exactly the **channel state** a
//! checkpoint must save.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use bytes::Bytes;

use redcr_mpi::tag::Namespace;
use redcr_mpi::{Communicator, Rank, RankSelector, Result, Status, Tag, TagSelector};

use crate::snapshot::ChannelMessage;

/// Wraps any [`Communicator`], counting user traffic and buffering drained
/// messages.
#[derive(Debug)]
pub struct CountingComm<'a, C> {
    inner: &'a C,
    sent_to: RefCell<Vec<u64>>,
    recvd_from: RefCell<Vec<u64>>,
    stash: RefCell<VecDeque<ChannelMessage>>,
    drains: Cell<u64>,
}

impl<'a, C: Communicator> CountingComm<'a, C> {
    /// Wraps `inner` with fresh counters and an empty stash.
    pub fn new(inner: &'a C) -> Self {
        let n = inner.size();
        CountingComm {
            inner,
            sent_to: RefCell::new(vec![0; n]),
            recvd_from: RefCell::new(vec![0; n]),
            stash: RefCell::new(VecDeque::new()),
            drains: Cell::new(0),
        }
    }

    /// Wraps `inner` and pre-loads the stash with channel state restored
    /// from a checkpoint: the application will receive these messages as if
    /// they were still in flight.
    pub fn with_restored_channel(inner: &'a C, messages: Vec<ChannelMessage>) -> Self {
        let c = Self::new(inner);
        *c.stash.borrow_mut() = messages.into();
        c
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        self.inner
    }

    /// Per-peer count of user messages sent by this rank.
    pub fn sent_counts(&self) -> Vec<u64> {
        self.sent_to.borrow().clone()
    }

    /// Per-peer count of user messages consumed from the transport.
    pub fn received_counts(&self) -> Vec<u64> {
        self.recvd_from.borrow().clone()
    }

    /// Number of protocol drains performed (diagnostics).
    pub fn drain_count(&self) -> u64 {
        self.drains.get()
    }

    /// A copy of the currently stashed (drained but unconsumed) messages —
    /// the channel state to include in a checkpoint.
    pub fn channel_state(&self) -> Vec<ChannelMessage> {
        self.stash.borrow().iter().cloned().collect()
    }

    /// Receives one user message directly from the transport (bypassing the
    /// stash) and appends it to the stash. Used by coordination protocols
    /// to drain in-flight traffic. Returns the source rank, or the full
    /// status for marker inspection.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (e.g. abort).
    pub fn drain_one(&self) -> Result<Status> {
        let (bytes, status) =
            self.inner.recv_ns(RankSelector::Any, TagSelector::Any, Namespace::User)?;
        self.drains.set(self.drains.get() + 1);
        self.recvd_from.borrow_mut()[status.source.index()] += 1;
        self.stash.borrow_mut().push_back(ChannelMessage {
            src: status.source.as_u32(),
            tag: status.tag.value(),
            payload: bytes.to_vec(),
        });
        Ok(status)
    }

    /// Removes the most recently drained message from the stash (used by
    /// protocols that must not stash control markers).
    pub(crate) fn unstash_last(&self) -> Option<ChannelMessage> {
        let msg = self.stash.borrow_mut().pop_back();
        if let Some(m) = &msg {
            // The marker was counted as a received user message by
            // drain_one; control traffic must not perturb the bookmark
            // totals, so undo the count.
            self.recvd_from.borrow_mut()[m.src as usize] -= 1;
        }
        msg
    }

    fn try_stash_match(&self, src: RankSelector, tag: TagSelector) -> Option<(Bytes, Status)> {
        let mut stash = self.stash.borrow_mut();
        let pos = stash.iter().position(|m| {
            src.matches(Rank::new(m.src))
                && match tag {
                    TagSelector::Tag(t) => t.value() == m.tag,
                    TagSelector::Any => true,
                }
        })?;
        let m = stash.remove(pos).expect("position just found");
        let status = Status {
            source: Rank::new(m.src),
            tag: Tag::new(m.tag),
            len: m.payload.len(),
            completed_at: self.inner.now(),
        };
        Some((Bytes::from(m.payload), status))
    }
}

impl<C: Communicator> Communicator for CountingComm<'_, C> {
    type Request = CountingRequest;

    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn compute(&self, seconds: f64) -> Result<()> {
        self.inner.compute(seconds)
    }

    fn send_ns(&self, dest: Rank, tag: Tag, data: Bytes, ns: Namespace) -> Result<()> {
        if ns == Namespace::User && dest.index() < self.sent_to.borrow().len() {
            self.sent_to.borrow_mut()[dest.index()] += 1;
        }
        self.inner.send_ns(dest, tag, data, ns)
    }

    fn recv_ns(
        &self,
        src: RankSelector,
        tag: TagSelector,
        ns: Namespace,
    ) -> Result<(Bytes, Status)> {
        if ns != Namespace::User {
            return self.inner.recv_ns(src, tag, ns);
        }
        if let Some(hit) = self.try_stash_match(src, tag) {
            return Ok(hit);
        }
        let (bytes, status) = self.inner.recv_ns(src, tag, ns)?;
        self.recvd_from.borrow_mut()[status.source.index()] += 1;
        Ok((bytes, status))
    }

    fn isend(&self, dest: Rank, tag: Tag, data: Bytes) -> Result<Self::Request> {
        self.send_ns(dest, tag, data, Namespace::User)?;
        Ok(CountingRequest(CountingRequestKind::Send))
    }

    fn irecv(&self, src: RankSelector, tag: TagSelector) -> Result<Self::Request> {
        Ok(CountingRequest(CountingRequestKind::Recv { src, tag }))
    }

    fn wait(&self, req: Self::Request) -> Result<Option<(Bytes, Status)>> {
        match req.0 {
            CountingRequestKind::Send => Ok(None),
            CountingRequestKind::Recv { src, tag } => {
                self.recv_ns(src, tag, Namespace::User).map(Some)
            }
        }
    }

    fn iprobe(&self, src: RankSelector, tag: TagSelector) -> Result<Option<Status>> {
        // Stash entries are logically "arrived": report them first.
        if let Some((bytes, status)) = self.peek_stash(src, tag) {
            let _ = bytes;
            return Ok(Some(status));
        }
        self.inner.iprobe(src, tag)
    }

    fn test(&self, req: Self::Request) -> Result<redcr_mpi::TestOutcome<Self::Request>> {
        match req.0 {
            CountingRequestKind::Send => Ok(redcr_mpi::TestOutcome::Completed(None)),
            CountingRequestKind::Recv { src, tag } => {
                // A stash hit or a buffered transport message means the
                // receive completes without blocking.
                if self.iprobe(src, tag)?.is_some() {
                    let out = self.recv_ns(src, tag, Namespace::User)?;
                    Ok(redcr_mpi::TestOutcome::Completed(Some(out)))
                } else {
                    Ok(redcr_mpi::TestOutcome::Pending(CountingRequest(
                        CountingRequestKind::Recv { src, tag },
                    )))
                }
            }
        }
    }

    fn probe(&self, src: RankSelector, tag: TagSelector) -> Result<Status> {
        if let Some((_, status)) = self.peek_stash(src, tag) {
            return Ok(status);
        }
        self.inner.probe(src, tag)
    }

    fn next_collective_seq(&self) -> u64 {
        self.inner.next_collective_seq()
    }

    fn recorder(&self) -> Option<&redcr_mpi::trace::Recorder> {
        self.inner.recorder()
    }

    fn metrics(&self) -> Option<&redcr_mpi::metrics::RankMetrics> {
        self.inner.metrics()
    }

    fn prof(&self) -> Option<&redcr_mpi::prof::RankProf> {
        self.inner.prof()
    }
}

impl<C: Communicator> CountingComm<'_, C> {
    fn peek_stash(&self, src: RankSelector, tag: TagSelector) -> Option<(usize, Status)> {
        let stash = self.stash.borrow();
        let m = stash.iter().find(|m| {
            src.matches(Rank::new(m.src))
                && match tag {
                    TagSelector::Tag(t) => t.value() == m.tag,
                    TagSelector::Any => true,
                }
        })?;
        Some((
            m.payload.len(),
            Status {
                source: Rank::new(m.src),
                tag: Tag::new(m.tag),
                len: m.payload.len(),
                completed_at: self.inner.now(),
            },
        ))
    }
}

/// A pending non-blocking operation on a [`CountingComm`].
#[derive(Debug)]
pub struct CountingRequest(CountingRequestKind);

#[derive(Debug)]
enum CountingRequestKind {
    Send,
    Recv { src: RankSelector, tag: TagSelector },
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcr_mpi::{CostModel, World};

    #[test]
    fn counts_user_traffic_per_peer() {
        let report = World::builder(3)
            .cost_model(CostModel::zero())
            .run(|base| {
                let comm = CountingComm::new(base);
                let me = comm.rank().index();
                if me == 0 {
                    comm.send(Rank::new(1), Tag::new(1), b"a")?;
                    comm.send(Rank::new(1), Tag::new(1), b"b")?;
                    comm.send(Rank::new(2), Tag::new(1), b"c")?;
                    Ok((comm.sent_counts(), comm.received_counts()))
                } else {
                    let expect = if me == 1 { 2 } else { 1 };
                    for _ in 0..expect {
                        comm.recv(Rank::new(0).into(), Tag::new(1).into())?;
                    }
                    Ok((comm.sent_counts(), comm.received_counts()))
                }
            })
            .unwrap();
        let results = report.into_results().unwrap();
        assert_eq!(results[0].0, vec![0, 2, 1]);
        assert_eq!(results[1].1, vec![2, 0, 0]);
        assert_eq!(results[2].1, vec![1, 0, 0]);
    }

    #[test]
    fn collective_traffic_not_counted() {
        let report = World::builder(2)
            .cost_model(CostModel::zero())
            .run(|base| {
                let comm = CountingComm::new(base);
                comm.barrier()?;
                comm.allreduce_f64(&[1.0], redcr_mpi::collectives::ReduceOp::Sum)?;
                Ok((comm.sent_counts(), comm.received_counts()))
            })
            .unwrap();
        for (sent, recvd) in report.into_results().unwrap() {
            assert!(sent.iter().all(|c| *c == 0));
            assert!(recvd.iter().all(|c| *c == 0));
        }
    }

    #[test]
    fn drained_messages_consumed_transparently() {
        let report = World::builder(2)
            .cost_model(CostModel::zero())
            .run(|base| {
                let comm = CountingComm::new(base);
                if comm.rank().index() == 0 {
                    comm.send(Rank::new(1), Tag::new(5), b"early")?;
                    Ok(Vec::new())
                } else {
                    // Protocol drains the message before the app asks.
                    comm.drain_one()?;
                    assert_eq!(comm.channel_state().len(), 1);
                    // The app's receive is then served from the stash.
                    let (bytes, status) = comm.recv(Rank::new(0).into(), Tag::new(5).into())?;
                    assert_eq!(status.source.index(), 0);
                    assert!(comm.channel_state().is_empty());
                    Ok(bytes.to_vec())
                }
            })
            .unwrap();
        assert_eq!(report.into_results().unwrap()[1], b"early".to_vec());
    }

    #[test]
    fn restored_channel_state_served_first() {
        let report = World::builder(1)
            .cost_model(CostModel::zero())
            .run(|base| {
                let restored = vec![ChannelMessage { src: 0, tag: 3, payload: vec![9, 9] }];
                let comm = CountingComm::with_restored_channel(base, restored);
                // Probe sees the stash entry.
                let s = comm.iprobe(RankSelector::Any, TagSelector::Any)?.expect("stash");
                assert_eq!(s.len, 2);
                let (bytes, status) = comm.recv(Rank::new(0).into(), Tag::new(3).into())?;
                assert_eq!(status.tag.value(), 3);
                Ok(bytes.to_vec())
            })
            .unwrap();
        assert_eq!(report.into_results().unwrap()[0], vec![9, 9]);
    }

    #[test]
    fn stash_matching_respects_selectors() {
        World::builder(1)
            .cost_model(CostModel::zero())
            .run(|base| {
                let restored = vec![
                    ChannelMessage { src: 0, tag: 1, payload: vec![1] },
                    ChannelMessage { src: 0, tag: 2, payload: vec![2] },
                ];
                let comm = CountingComm::with_restored_channel(base, restored);
                // Ask for tag 2 first: must skip the tag-1 entry.
                let (b2, _) = comm.recv(Rank::new(0).into(), Tag::new(2).into())?;
                assert_eq!(&b2[..], &[2]);
                let (b1, _) = comm.recv(Rank::new(0).into(), Tag::new(1).into())?;
                assert_eq!(&b1[..], &[1]);
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }
}
