//! Process images: what one rank contributes to a coordinated checkpoint.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use crate::codec;
use crate::compress;
use crate::exclusion::ExclusionSet;
use crate::Result;

/// A buffered in-flight message captured as channel state during
/// coordination (either drained by the bookmark protocol or recorded by
/// Chandy–Lamport).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelMessage {
    /// Sending rank (communicator-level).
    pub src: u32,
    /// User tag value.
    pub tag: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// One rank's complete contribution to a coordinated checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessImage {
    /// The rank that produced this image (communicator-level).
    pub rank: u32,
    /// Virtual time of the cut, seconds.
    pub virtual_time: f64,
    /// Serialized application state (via [`crate::codec`]).
    pub app_state: Vec<u8>,
    /// In-flight messages owed to this rank at the cut.
    pub channel_state: Vec<ChannelMessage>,
    /// Whether `app_state` is RLE-compressed.
    pub compressed: bool,
}

impl ProcessImage {
    /// Builds an image from a serializable application state.
    ///
    /// # Errors
    ///
    /// Returns a codec error if the state cannot be serialized.
    pub fn capture<S: Serialize>(rank: u32, virtual_time: f64, state: &S) -> Result<Self> {
        Ok(ProcessImage {
            rank,
            virtual_time,
            app_state: codec::to_bytes(state)?,
            channel_state: Vec::new(),
            compressed: false,
        })
    }

    /// Builds an image with memory exclusion and optional compression
    /// applied to the serialized state.
    ///
    /// # Errors
    ///
    /// Returns a codec error if the state cannot be serialized.
    pub fn capture_with<S: Serialize>(
        rank: u32,
        virtual_time: f64,
        state: &S,
        exclusions: &ExclusionSet,
        compressed: bool,
    ) -> Result<Self> {
        let mut bytes = codec::to_bytes(state)?;
        exclusions.apply(&mut bytes);
        let app_state = if compressed { compress::compress(&bytes) } else { bytes };
        Ok(ProcessImage { rank, virtual_time, app_state, channel_state: Vec::new(), compressed })
    }

    /// Attaches drained channel state.
    pub fn with_channel_state(mut self, messages: Vec<ChannelMessage>) -> Self {
        self.channel_state = messages;
        self
    }

    /// Recovers the application state.
    ///
    /// # Errors
    ///
    /// Returns a codec error if the bytes do not decode as `S` (e.g. after
    /// memory exclusion zeroed a region the type needs — the application
    /// contract is that excluded regions are re-derivable scratch space).
    pub fn restore<S: DeserializeOwned>(&self) -> Result<S> {
        if self.compressed {
            let bytes = compress::decompress(&self.app_state)?;
            codec::from_bytes(&bytes)
        } else {
            codec::from_bytes(&self.app_state)
        }
    }

    /// Serializes the whole image for stable storage.
    ///
    /// # Errors
    ///
    /// Returns a codec error on serialization failure.
    pub fn to_stored_bytes(&self) -> Result<Vec<u8>> {
        codec::to_bytes(self)
    }

    /// Deserializes an image previously produced by
    /// [`to_stored_bytes`](Self::to_stored_bytes).
    ///
    /// # Errors
    ///
    /// Returns a codec error on malformed input.
    pub fn from_stored_bytes(bytes: &[u8]) -> Result<Self> {
        codec::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    struct State {
        iter: u64,
        x: Vec<f64>,
        label: String,
    }

    fn state() -> State {
        State { iter: 41, x: vec![1.5; 100], label: "solver".into() }
    }

    #[test]
    fn capture_restore_round_trip() {
        let img = ProcessImage::capture(3, 12.5, &state()).unwrap();
        assert_eq!(img.rank, 3);
        assert_eq!(img.virtual_time, 12.5);
        let back: State = img.restore().unwrap();
        assert_eq!(back, state());
    }

    #[test]
    fn stored_bytes_round_trip() {
        let img = ProcessImage::capture(1, 7.0, &state())
            .unwrap()
            .with_channel_state(vec![ChannelMessage { src: 0, tag: 9, payload: vec![1, 2] }]);
        let bytes = img.to_stored_bytes().unwrap();
        let back = ProcessImage::from_stored_bytes(&bytes).unwrap();
        assert_eq!(back, img);
        assert_eq!(back.channel_state.len(), 1);
    }

    #[test]
    fn compression_shrinks_repetitive_state() {
        let plain = ProcessImage::capture(0, 0.0, &state()).unwrap();
        let squeezed =
            ProcessImage::capture_with(0, 0.0, &state(), &ExclusionSet::new(), true).unwrap();
        assert!(squeezed.app_state.len() < plain.app_state.len());
        let back: State = squeezed.restore().unwrap();
        assert_eq!(back, state());
    }

    #[test]
    fn exclusion_zeroes_region() {
        // Exclude the tail of the serialized vector: the floats there come
        // back as zero (re-derivable scratch), the rest survives.
        let s = state();
        let mut ex = ExclusionSet::new();
        // Serialized layout: iter (8) + len (8) + 100 f64 (800) + string.
        ex.exclude(16 + 400..16 + 800);
        let img = ProcessImage::capture_with(2, 1.0, &s, &ex, false).unwrap();
        let back: State = img.restore().unwrap();
        assert_eq!(back.iter, s.iter);
        assert_eq!(back.label, s.label);
        assert_eq!(&back.x[..50], &s.x[..50]);
        assert!(back.x[50..].iter().all(|v| *v == 0.0));
    }

    #[test]
    fn wrong_type_restore_fails() {
        let img = ProcessImage::capture(0, 0.0, &state()).unwrap();
        assert!(img.restore::<Vec<String>>().is_err());
    }
}
