//! Incremental checkpointing (paper Section 2): save only the pages that
//! changed since the previous checkpoint, and reconstruct a full image at
//! restart by replaying the chain on top of the last full checkpoint.
//!
//! Real systems use the MMU dirty bit; here the engine keeps a 64-bit hash
//! per fixed-size page and diffs against the previous image — the
//! software analogue with identical externally-visible behaviour.

use serde::{Deserialize, Serialize};

use crate::error::CkptError;
use crate::Result;

/// Default page granularity (4 KiB, like the MMU).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// One checkpoint produced by the [`IncrementalEngine`]: either a full
/// image or the dirty pages relative to the previous checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Increment {
    /// A complete image (the chain base).
    Full {
        /// The whole image.
        image: Vec<u8>,
    },
    /// Only the pages that changed since the previous checkpoint.
    Delta {
        /// Length of the full image this delta reconstructs to.
        image_len: u64,
        /// `(page index, page bytes)` for each dirty page.
        pages: Vec<(u64, Vec<u8>)>,
    },
}

impl Increment {
    /// Serialized payload size in bytes (what would hit stable storage).
    pub fn stored_bytes(&self) -> usize {
        match self {
            Increment::Full { image } => image.len(),
            Increment::Delta { pages, .. } => {
                pages.iter().map(|(_, p)| p.len() + 8).sum::<usize>() + 8
            }
        }
    }

    /// Whether this is a full (chain-base) checkpoint.
    pub fn is_full(&self) -> bool {
        matches!(self, Increment::Full { .. })
    }
}

/// Tracks page hashes between checkpoints and emits [`Increment`]s.
#[derive(Debug, Clone)]
pub struct IncrementalEngine {
    page_size: usize,
    /// Page hashes of the image at the last checkpoint, or `None` before
    /// the first one.
    last_hashes: Option<Vec<u64>>,
    last_len: usize,
}

impl IncrementalEngine {
    /// An engine with the default 4 KiB page size.
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// An engine with a custom page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size == 0`.
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        IncrementalEngine { page_size, last_hashes: None, last_len: 0 }
    }

    /// The page granularity.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Produces the next checkpoint for `image`. The first call (and any
    /// call after [`reset`](Self::reset), or when the image length changes)
    /// emits a full image; later calls emit deltas.
    pub fn checkpoint(&mut self, image: &[u8]) -> Increment {
        let hashes: Vec<u64> = image.chunks(self.page_size).map(page_hash).collect();
        let delta_ok = match &self.last_hashes {
            Some(last) => self.last_len == image.len() && last.len() == hashes.len(),
            None => false,
        };
        let inc = if delta_ok {
            let last = self.last_hashes.as_ref().expect("delta_ok implies last");
            let mut pages = Vec::new();
            for (i, chunk) in image.chunks(self.page_size).enumerate() {
                if last[i] != hashes[i] {
                    pages.push((i as u64, chunk.to_vec()));
                }
            }
            Increment::Delta { image_len: image.len() as u64, pages }
        } else {
            Increment::Full { image: image.to_vec() }
        };
        self.last_hashes = Some(hashes);
        self.last_len = image.len();
        inc
    }

    /// Forgets the chain: the next checkpoint will be full.
    pub fn reset(&mut self) {
        self.last_hashes = None;
        self.last_len = 0;
    }
}

impl Default for IncrementalEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a over a page — the software stand-in for the MMU dirty bit.
fn page_hash(page: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for &b in page {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Reconstructs the full image from a chain `[full, delta, delta, …]`
/// (oldest first), applying each delta at page granularity `page_size`.
///
/// # Errors
///
/// Returns [`CkptError::BrokenChain`] if the chain does not start with a
/// full image, a delta's length disagrees, or a page index is out of range.
pub fn reconstruct(chain: &[Increment], page_size: usize) -> Result<Vec<u8>> {
    let mut iter = chain.iter();
    let mut image = match iter.next() {
        Some(Increment::Full { image }) => image.clone(),
        Some(Increment::Delta { .. }) => {
            return Err(CkptError::BrokenChain { what: "chain must start with a full image" })
        }
        None => return Err(CkptError::BrokenChain { what: "empty chain" }),
    };
    for inc in iter {
        match inc {
            Increment::Full { image: full } => image = full.clone(),
            Increment::Delta { image_len, pages } => {
                if *image_len as usize != image.len() {
                    return Err(CkptError::BrokenChain {
                        what: "delta image length disagrees with base",
                    });
                }
                for (idx, page) in pages {
                    let start = (*idx as usize) * page_size;
                    let end = start + page.len();
                    if end > image.len() || page.len() > page_size {
                        return Err(CkptError::BrokenChain { what: "page out of range" });
                    }
                    image[start..end].copy_from_slice(page);
                }
            }
        }
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_checkpoint_is_full() {
        let mut eng = IncrementalEngine::with_page_size(8);
        let inc = eng.checkpoint(&[1u8; 32]);
        assert!(inc.is_full());
    }

    #[test]
    fn unchanged_image_emits_empty_delta() {
        let mut eng = IncrementalEngine::with_page_size(8);
        let img = vec![5u8; 64];
        eng.checkpoint(&img);
        match eng.checkpoint(&img) {
            Increment::Delta { pages, .. } => assert!(pages.is_empty()),
            _ => panic!("expected delta"),
        }
    }

    #[test]
    fn only_dirty_pages_captured() {
        let mut eng = IncrementalEngine::with_page_size(8);
        let mut img = vec![0u8; 64];
        eng.checkpoint(&img);
        img[17] = 1; // page 2
        img[63] = 2; // page 7
        match eng.checkpoint(&img) {
            Increment::Delta { pages, .. } => {
                let indices: Vec<u64> = pages.iter().map(|(i, _)| *i).collect();
                assert_eq!(indices, vec![2, 7]);
            }
            _ => panic!("expected delta"),
        }
    }

    #[test]
    fn chain_reconstructs_exactly() {
        let mut eng = IncrementalEngine::with_page_size(16);
        let mut chain = Vec::new();
        let mut img: Vec<u8> = (0..200u8).collect();
        chain.push(eng.checkpoint(&img));
        for step in 0..5 {
            img[step * 13 % 200] = step as u8 ^ 0xAA;
            img[(step * 91 + 7) % 200] = step as u8;
            chain.push(eng.checkpoint(&img));
        }
        let rebuilt = reconstruct(&chain, 16).unwrap();
        assert_eq!(rebuilt, img);
    }

    #[test]
    fn length_change_falls_back_to_full() {
        let mut eng = IncrementalEngine::with_page_size(8);
        eng.checkpoint(&[0u8; 32]);
        let inc = eng.checkpoint(&[0u8; 40]);
        assert!(inc.is_full(), "resized image must re-base the chain");
    }

    #[test]
    fn reset_forces_full() {
        let mut eng = IncrementalEngine::with_page_size(8);
        let img = vec![0u8; 32];
        eng.checkpoint(&img);
        eng.reset();
        assert!(eng.checkpoint(&img).is_full());
    }

    #[test]
    fn broken_chains_detected() {
        assert!(reconstruct(&[], 8).is_err());
        let delta = Increment::Delta { image_len: 8, pages: vec![] };
        assert!(reconstruct(std::slice::from_ref(&delta), 8).is_err());
        let full = Increment::Full { image: vec![0; 8] };
        let bad_len = Increment::Delta { image_len: 16, pages: vec![] };
        assert!(reconstruct(&[full.clone(), bad_len], 8).is_err());
        let bad_page = Increment::Delta { image_len: 8, pages: vec![(5, vec![0u8; 8])] };
        assert!(reconstruct(&[full, bad_page], 8).is_err());
    }

    #[test]
    fn delta_much_smaller_than_full() {
        let mut eng = IncrementalEngine::new();
        let mut img = vec![0u8; 1 << 20];
        let full = eng.checkpoint(&img);
        img[123_456] ^= 0xFF;
        let delta = eng.checkpoint(&img);
        assert!(delta.stored_bytes() < full.stored_bytes() / 100);
    }

    #[test]
    fn stored_bytes_accounting() {
        let full = Increment::Full { image: vec![0; 100] };
        assert_eq!(full.stored_bytes(), 100);
        let delta = Increment::Delta { image_len: 100, pages: vec![(0, vec![0; 10])] };
        assert_eq!(delta.stored_bytes(), 10 + 8 + 8);
    }
}
