//! The Chandy–Lamport distributed snapshot (marker) protocol — the classic
//! coordination alternative to the bookmark exchange (paper Section 2:
//! "A distributed snapshot algorithm, also commonly known as
//! Chandy-Lamport algorithm, is one of the widely used coordination
//! protocols").
//!
//! Every rank records its local state (the caller does that), sends a
//! marker on each outgoing channel, and then records incoming messages on
//! each channel until that channel's marker arrives. Channels here are
//! FIFO per sender, which the runtime guarantees.
//!
//! Markers travel in the user namespace under a reserved tag
//! ([`MARKER_TAG_BASE`], bit 44 set) so that they order correctly with user
//! messages on the same channel; applications must not use tags with bits
//! 44 or 45 set (bit 45 is reserved by the replication layer).

use bytes::Bytes;

use redcr_mpi::{Communicator, MpiError, Rank, Result, Tag};

use crate::counting::CountingComm;
use crate::snapshot::ChannelMessage;

/// Base of the reserved marker tag range (bit 44).
pub const MARKER_TAG_BASE: u64 = 1 << 44;

/// Builds the marker tag for snapshot `epoch`.
pub fn marker_tag(epoch: u64) -> Tag {
    Tag::new(MARKER_TAG_BASE | (epoch & (MARKER_TAG_BASE - 1)))
}

/// Whether a received tag value is a snapshot marker.
pub fn is_marker(tag_value: u64) -> bool {
    tag_value & MARKER_TAG_BASE != 0 && tag_value & crate::coordinator::REPLICATION_TAG_BIT == 0
}

/// Runs one round of the marker protocol for snapshot `epoch`. Collective:
/// all ranks must participate with the same `epoch`. Returns the channel
/// state recorded for this rank (messages that were in flight at the cut).
///
/// # Errors
///
/// Propagates transport errors; returns
/// [`MpiError::CollectiveMismatch`] if a marker from a different epoch
/// arrives (overlapping snapshots are not supported).
pub fn snapshot<C: Communicator>(
    comm: &CountingComm<'_, C>,
    epoch: u64,
) -> Result<Vec<ChannelMessage>> {
    let n = comm.size();
    let me = comm.rank().index();
    if n == 1 {
        return Ok(comm.channel_state());
    }
    let tag = marker_tag(epoch);

    // Record local state is the caller's job; we immediately emit markers
    // on every outgoing channel (including to ranks we never messaged —
    // the protocol requires markers on all channels).
    for peer in 0..n {
        if peer != me {
            comm.send_ns(
                Rank::new(peer as u32),
                tag,
                Bytes::new(),
                redcr_mpi::tag::Namespace::User,
            )?;
        }
    }

    // Drain until a marker arrived from every peer; everything that
    // arrives before a channel's marker is channel state.
    let mut markers_missing = n - 1;
    let mut marker_seen = vec![false; n];
    while markers_missing > 0 {
        let status = comm.drain_one()?;
        if is_marker(status.tag.value()) {
            // Markers are control traffic: remove from the stash.
            let _ = comm.unstash_last();
            if status.tag.value() != tag.value() {
                return Err(MpiError::CollectiveMismatch {
                    what: "chandy-lamport marker from a different epoch",
                });
            }
            let src = status.source.index();
            if marker_seen[src] {
                return Err(MpiError::CollectiveMismatch {
                    what: "duplicate chandy-lamport marker on one channel",
                });
            }
            marker_seen[src] = true;
            markers_missing -= 1;
        }
        // Non-marker messages stay in the stash: they are both the recorded
        // channel state and still deliverable to the application.
    }
    let recorded = comm.channel_state();
    // Separate consecutive snapshots: without this barrier a fast rank
    // could emit its next-epoch marker while a slow rank is still draining
    // this epoch, which the epoch check above would (correctly) reject.
    comm.barrier()?;
    Ok(recorded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcr_mpi::{CostModel, World};

    #[test]
    fn marker_tags_round_trip() {
        let t = marker_tag(42);
        assert!(is_marker(t.value()));
        assert!(!is_marker(7));
        assert_ne!(marker_tag(1), marker_tag(2));
    }

    #[test]
    fn snapshot_with_no_traffic() {
        World::builder(4)
            .cost_model(CostModel::zero())
            .run(|base| {
                let comm = CountingComm::new(base);
                let recorded = snapshot(&comm, 1)?;
                assert!(recorded.is_empty());
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }

    #[test]
    fn in_flight_messages_recorded_and_still_deliverable() {
        World::builder(2)
            .cost_model(CostModel::zero())
            .run(|base| {
                let comm = CountingComm::new(base);
                if comm.rank().index() == 0 {
                    // Sent before the cut: must be captured as channel state
                    // on rank 1.
                    comm.send(Rank::new(1), Tag::new(3), b"pre-cut")?;
                }
                let recorded = snapshot(&comm, 7)?;
                if comm.rank().index() == 1 {
                    assert_eq!(recorded.len(), 1);
                    assert_eq!(recorded[0].payload, b"pre-cut".to_vec());
                    // And the app still gets it afterwards.
                    let (b, _) = comm.recv(Rank::new(0).into(), Tag::new(3).into())?;
                    assert_eq!(&b[..], b"pre-cut");
                } else {
                    assert!(recorded.is_empty());
                }
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }

    #[test]
    fn consecutive_epochs_do_not_interfere() {
        World::builder(3)
            .cost_model(CostModel::zero())
            .run(|base| {
                let comm = CountingComm::new(base);
                for epoch in 0..3 {
                    if comm.rank().index() == epoch as usize % 3 {
                        let dst = Rank::new(((epoch as usize + 1) % 3) as u32);
                        comm.send(dst, Tag::new(epoch), &[epoch as u8])?;
                    }
                    snapshot(&comm, epoch)?;
                }
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }

    #[test]
    fn single_rank_snapshot_is_noop() {
        World::builder(1)
            .cost_model(CostModel::zero())
            .run(|base| {
                let comm = CountingComm::new(base);
                assert!(snapshot(&comm, 0)?.is_empty());
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }
}
