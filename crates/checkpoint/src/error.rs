use std::error::Error;
use std::fmt;

use redcr_mpi::MpiError;

/// Errors produced by checkpoint/restart operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum CkptError {
    /// Serialization or deserialization of application state failed.
    Codec(String),
    /// The underlying storage backend failed.
    Storage(std::io::Error),
    /// A requested snapshot does not exist (or the set is incomplete).
    NotFound {
        /// Human-readable description of what was looked up.
        what: String,
    },
    /// The coordination protocol failed (typically because the run aborted
    /// mid-checkpoint).
    Protocol(MpiError),
    /// An incremental chain is broken (missing base or mismatched page
    /// geometry).
    BrokenChain {
        /// Description of the inconsistency.
        what: &'static str,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Codec(msg) => write!(f, "state codec error: {msg}"),
            CkptError::Storage(e) => write!(f, "stable storage error: {e}"),
            CkptError::NotFound { what } => write!(f, "snapshot not found: {what}"),
            CkptError::Protocol(e) => write!(f, "checkpoint coordination failed: {e}"),
            CkptError::BrokenChain { what } => write!(f, "incremental chain broken: {what}"),
        }
    }
}

impl Error for CkptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CkptError::Storage(e) => Some(e),
            CkptError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Storage(e)
    }
}

impl From<MpiError> for CkptError {
    fn from(e: MpiError) -> Self {
        CkptError::Protocol(e)
    }
}

impl From<CkptError> for MpiError {
    fn from(e: CkptError) -> Self {
        match e {
            // A protocol failure is already a runtime error (usually the
            // planned fail-stop abort); surface it unchanged so abort
            // handling still recognizes it.
            CkptError::Protocol(inner) => inner,
            other => MpiError::App { what: other.to_string() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CkptError::Codec("bad length".into());
        assert!(e.to_string().contains("bad length"));
        let e = CkptError::from(std::io::Error::other("disk gone"));
        assert!(e.source().is_some());
        let e = CkptError::from(MpiError::DecodeError { what: "x" });
        assert!(matches!(e, CkptError::Protocol(_)));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CkptError>();
    }
}
