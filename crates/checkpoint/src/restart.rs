//! Restart support: locating the newest *complete* coordinated checkpoint
//! (every rank's image present) on stable storage.

use std::collections::BTreeMap;

use crate::storage::{SnapshotKey, StableStorage};
use crate::Result;

/// Finds the highest checkpoint sequence number for which all `n_ranks`
/// images are present, or `None` if no complete checkpoint exists.
///
/// Incomplete checkpoints (a crash mid-write leaves some ranks missing)
/// are skipped — the stable-storage property the paper's recovery relies
/// on.
///
/// The per-sequence tally is a `BTreeMap` so the quorum count is
/// aggregated and drained in sorted order no matter what order the
/// backend lists keys in — restart selection must not depend on
/// directory-listing or hash-iteration order.
///
/// # Errors
///
/// Returns storage backend errors.
pub fn latest_complete(storage: &dyn StableStorage, n_ranks: u32) -> Result<Option<u64>> {
    let mut per_seq: BTreeMap<u64, u32> = BTreeMap::new();
    for key in storage.list()? {
        if key.rank < n_ranks {
            *per_seq.entry(key.seq).or_insert(0) += 1;
        }
    }
    Ok(per_seq.into_iter().filter(|&(_, count)| count >= n_ranks).map(|(seq, _)| seq).next_back())
}

/// Loads every rank's raw image bytes for checkpoint `seq`.
///
/// # Errors
///
/// Returns [`CkptError::NotFound`](crate::CkptError::NotFound) if any rank
/// image is missing.
pub fn load_all(storage: &dyn StableStorage, seq: u64, n_ranks: u32) -> Result<Vec<Vec<u8>>> {
    (0..n_ranks).map(|rank| storage.load(SnapshotKey::new(seq, rank))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;

    #[test]
    fn empty_storage_has_no_checkpoint() {
        let s = MemoryStorage::new();
        assert_eq!(latest_complete(&s, 4).unwrap(), None);
    }

    #[test]
    fn incomplete_sets_skipped() {
        let s = MemoryStorage::new();
        // Seq 1 complete (2 ranks), seq 2 incomplete (1 of 2).
        s.store(SnapshotKey::new(1, 0), b"a").unwrap();
        s.store(SnapshotKey::new(1, 1), b"b").unwrap();
        s.store(SnapshotKey::new(2, 0), b"c").unwrap();
        assert_eq!(latest_complete(&s, 2).unwrap(), Some(1));
    }

    #[test]
    fn newest_complete_wins() {
        let s = MemoryStorage::new();
        for seq in [1u64, 2, 3] {
            for rank in 0..3u32 {
                s.store(SnapshotKey::new(seq, rank), b"x").unwrap();
            }
        }
        assert_eq!(latest_complete(&s, 3).unwrap(), Some(3));
    }

    #[test]
    fn extra_rank_images_ignored() {
        let s = MemoryStorage::new();
        s.store(SnapshotKey::new(5, 0), b"a").unwrap();
        s.store(SnapshotKey::new(5, 9), b"stale-from-bigger-world").unwrap();
        // For a 2-rank world, rank 1 is missing: incomplete.
        assert_eq!(latest_complete(&s, 2).unwrap(), None);
        // For a 1-rank world, rank 0 present: complete.
        assert_eq!(latest_complete(&s, 1).unwrap(), Some(5));
    }

    /// A storage wrapper whose `list()` returns keys in an arbitrary,
    /// adversarial order — simulating backends (directory listings, hash
    /// maps) with no order guarantee.
    #[derive(Debug)]
    struct ScrambledList<S: StableStorage> {
        inner: S,
        /// Deterministic scramble: rotate by `rot` then reverse.
        rot: usize,
    }

    impl<S: StableStorage> StableStorage for ScrambledList<S> {
        fn store(&self, key: SnapshotKey, data: &[u8]) -> crate::Result<()> {
            self.inner.store(key, data)
        }
        fn load(&self, key: SnapshotKey) -> crate::Result<Vec<u8>> {
            self.inner.load(key)
        }
        fn list(&self) -> crate::Result<Vec<SnapshotKey>> {
            let mut keys = self.inner.list()?;
            if !keys.is_empty() {
                let r = self.rot % keys.len();
                keys.rotate_left(r);
                keys.reverse();
            }
            Ok(keys)
        }
        fn delete(&self, key: SnapshotKey) -> crate::Result<()> {
            self.inner.delete(key)
        }
    }

    #[test]
    fn quorum_counting_is_iteration_order_independent() {
        // Seq 3 complete, seq 4 incomplete (missing rank 2), seq 2
        // complete: the answer must be 3 under every listing order.
        let populate = |s: &dyn StableStorage| {
            for rank in 0..3u32 {
                s.store(SnapshotKey::new(2, rank), b"x").unwrap();
                s.store(SnapshotKey::new(3, rank), b"x").unwrap();
            }
            s.store(SnapshotKey::new(4, 0), b"x").unwrap();
            s.store(SnapshotKey::new(4, 1), b"x").unwrap();
        };
        let mut answers = Vec::new();
        for rot in 0..11 {
            let s = ScrambledList { inner: MemoryStorage::new(), rot };
            populate(&s);
            answers.push(latest_complete(&s, 3).unwrap());
        }
        assert!(answers.iter().all(|a| *a == Some(3)), "order-dependent result: {answers:?}");
    }

    #[test]
    fn load_all_returns_rank_order() {
        let s = MemoryStorage::new();
        s.store(SnapshotKey::new(1, 0), b"zero").unwrap();
        s.store(SnapshotKey::new(1, 1), b"one").unwrap();
        let all = load_all(&s, 1, 2).unwrap();
        assert_eq!(all, vec![b"zero".to_vec(), b"one".to_vec()]);
        assert!(load_all(&s, 1, 3).is_err());
    }
}
