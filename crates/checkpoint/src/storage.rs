//! Stable storage: where process images live, and what writing them costs.
//!
//! "Stable storage is an abstraction for some storage devices ensuring that
//! recovery data persists through failures" (paper Section 2). Two backends
//! are provided — an in-memory store for simulations and tests, and a
//! directory-backed store — both behind the object-safe [`StableStorage`]
//! trait. A [`StorageCostModel`] converts image sizes into the *virtual
//! time* cost of a checkpoint (`c`) and of reading it back at restart
//! (contributing to `R`), which is how storage bandwidth enters the paper's
//! model.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::path::PathBuf;

use parking_lot::Mutex;

use crate::error::CkptError;
use crate::Result;

/// Identifies one process image within one coordinated checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SnapshotKey {
    /// Coordinated-checkpoint sequence number (monotone per job).
    pub seq: u64,
    /// Virtual rank of the process.
    pub rank: u32,
}

impl SnapshotKey {
    /// Creates a key.
    pub fn new(seq: u64, rank: u32) -> Self {
        SnapshotKey { seq, rank }
    }

    fn file_name(&self) -> String {
        format!("ckpt-{:010}-rank-{:06}.img", self.seq, self.rank)
    }

    fn parse(name: &str) -> Option<Self> {
        let rest = name.strip_prefix("ckpt-")?.strip_suffix(".img")?;
        let (seq, rank) = rest.split_once("-rank-")?;
        Some(SnapshotKey { seq: seq.parse().ok()?, rank: rank.parse().ok()? })
    }
}

impl fmt::Display for SnapshotKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint {} rank {}", self.seq, self.rank)
    }
}

/// Cost model converting bytes moved to virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageCostModel {
    /// Fixed per-image write cost (coordination, metadata, sync), seconds.
    pub write_base_seconds: f64,
    /// Write cost per byte, seconds (1 / aggregate write bandwidth share).
    pub write_seconds_per_byte: f64,
    /// Fixed per-image read cost, seconds.
    pub read_base_seconds: f64,
    /// Read cost per byte, seconds.
    pub read_seconds_per_byte: f64,
}

impl StorageCostModel {
    /// A parallel-file-system-like model: 1 s base cost, ~1 GB/s effective
    /// per-process write bandwidth, reads twice as fast.
    pub fn parallel_fs() -> Self {
        StorageCostModel {
            write_base_seconds: 1.0,
            write_seconds_per_byte: 1e-9,
            read_base_seconds: 1.0,
            read_seconds_per_byte: 0.5e-9,
        }
    }

    /// Free storage (functional tests).
    pub fn zero() -> Self {
        StorageCostModel {
            write_base_seconds: 0.0,
            write_seconds_per_byte: 0.0,
            read_base_seconds: 0.0,
            read_seconds_per_byte: 0.0,
        }
    }

    /// A fixed-cost model: every checkpoint write costs exactly
    /// `write_seconds` and every read `read_seconds`, independent of size —
    /// convenient for matching the paper's measured `c = 120 s`,
    /// `R = 500 s`.
    pub fn fixed(write_seconds: f64, read_seconds: f64) -> Self {
        StorageCostModel {
            write_base_seconds: write_seconds,
            write_seconds_per_byte: 0.0,
            read_base_seconds: read_seconds,
            read_seconds_per_byte: 0.0,
        }
    }

    /// Virtual-time cost of writing `len` bytes.
    pub fn write_cost(&self, len: usize) -> f64 {
        self.write_base_seconds + len as f64 * self.write_seconds_per_byte
    }

    /// Virtual-time cost of reading `len` bytes.
    pub fn read_cost(&self, len: usize) -> f64 {
        self.read_base_seconds + len as f64 * self.read_seconds_per_byte
    }
}

/// A stable-storage backend for process images.
///
/// Implementations must be `Send + Sync`: every rank thread stores its own
/// image concurrently during a coordinated checkpoint.
pub trait StableStorage: Send + Sync + fmt::Debug {
    /// Persists `data` under `key`, overwriting any previous image.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Storage`] on backend failure.
    fn store(&self, key: SnapshotKey, data: &[u8]) -> Result<()>;

    /// Loads the image stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::NotFound`] if no image exists for `key`.
    fn load(&self, key: SnapshotKey) -> Result<Vec<u8>>;

    /// Lists all stored keys (any order).
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Storage`] on backend failure.
    fn list(&self) -> Result<Vec<SnapshotKey>>;

    /// Deletes the image under `key` (no-op if absent).
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Storage`] on backend failure.
    fn delete(&self, key: SnapshotKey) -> Result<()>;

    /// Deletes every image with `seq` strictly less than `keep_from_seq`
    /// (garbage collection after a newer complete checkpoint lands).
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Storage`] on backend failure.
    fn prune_before(&self, keep_from_seq: u64) -> Result<()> {
        for key in self.list()? {
            if key.seq < keep_from_seq {
                self.delete(key)?;
            }
        }
        Ok(())
    }
}

/// In-memory stable storage (a shared map).
///
/// The image map is a `BTreeMap` so `list()` (and everything downstream —
/// `prune_before`, restart quorum counting, snapshot drains) observes keys
/// in sorted order rather than hash-iteration order. `MemoryStorage` backs
/// simulations whose reports must be bit-identical across runs; a
/// `HashMap` here would leak `RandomState` ordering into them.
#[derive(Debug, Default)]
pub struct MemoryStorage {
    images: Mutex<BTreeMap<SnapshotKey, Vec<u8>>>,
}

impl MemoryStorage {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently stored.
    pub fn total_bytes(&self) -> usize {
        self.images.lock().values().map(Vec::len).sum()
    }
}

impl StableStorage for MemoryStorage {
    fn store(&self, key: SnapshotKey, data: &[u8]) -> Result<()> {
        self.images.lock().insert(key, data.to_vec());
        Ok(())
    }

    fn load(&self, key: SnapshotKey) -> Result<Vec<u8>> {
        self.images
            .lock()
            .get(&key)
            .cloned()
            .ok_or_else(|| CkptError::NotFound { what: key.to_string() })
    }

    fn list(&self) -> Result<Vec<SnapshotKey>> {
        Ok(self.images.lock().keys().copied().collect())
    }

    fn delete(&self, key: SnapshotKey) -> Result<()> {
        self.images.lock().remove(&key);
        Ok(())
    }
}

/// Directory-backed stable storage: one file per process image.
#[derive(Debug)]
pub struct DiskStorage {
    dir: PathBuf,
}

impl DiskStorage {
    /// Opens (creating if needed) a storage directory.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Storage`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskStorage { dir })
    }

    /// The backing directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }
}

impl StableStorage for DiskStorage {
    fn store(&self, key: SnapshotKey, data: &[u8]) -> Result<()> {
        // Write-then-rename so that a torn write never looks like a valid
        // image (the stable-storage property). The temp name is unique per
        // writer: replicas of the same virtual rank legitimately store the
        // same key concurrently (their images are equivalent), and must not
        // trip over each other's rename.
        static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        // detlint::allow(R6, reason = "pure uniqueness counter: the value only names a temp file and orders nothing cross-thread; fetch_add is atomic at every ordering")
        let writer = WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let final_path = self.dir.join(key.file_name());
        let tmp_path = self.dir.join(format!("{}.{writer}.tmp", key.file_name()));
        {
            // detlint::allow(R8, reason = "deliberate blocking checkpoint I/O: disk persistence is the point of DiskStorage, and its wall-clock cost is charged to the model as checkpoint_cost, not hidden from it")
            let mut f = std::fs::File::create(&tmp_path)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        // detlint::allow(R8, reason = "deliberate blocking checkpoint I/O: atomic rename completes the write-then-publish protocol; cost is charged as checkpoint_cost")
        std::fs::rename(&tmp_path, &final_path)?;
        Ok(())
    }

    fn load(&self, key: SnapshotKey) -> Result<Vec<u8>> {
        let path = self.dir.join(key.file_name());
        // detlint::allow(R8, reason = "deliberate blocking restart I/O: reading a snapshot back happens during recovery, whose wall-clock cost is the restart_cost the model accounts for")
        let mut f = std::fs::File::open(&path)
            .map_err(|_| CkptError::NotFound { what: key.to_string() })?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn list(&self) -> Result<Vec<SnapshotKey>> {
        let mut keys = Vec::new();
        // detlint::allow(R8, reason = "deliberate blocking recovery I/O: enumerating persisted snapshots only happens at restart, outside steady-state virtual time")
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if let Some(key) = SnapshotKey::parse(name) {
                    keys.push(key);
                }
            }
        }
        Ok(keys)
    }

    fn delete(&self, key: SnapshotKey) -> Result<()> {
        let path = self.dir.join(key.file_name());
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(storage: &dyn StableStorage) {
        let k1 = SnapshotKey::new(1, 0);
        let k2 = SnapshotKey::new(1, 1);
        let k3 = SnapshotKey::new(2, 0);
        storage.store(k1, b"alpha").unwrap();
        storage.store(k2, b"beta").unwrap();
        storage.store(k3, b"gamma").unwrap();
        assert_eq!(storage.load(k1).unwrap(), b"alpha");
        assert_eq!(storage.load(k2).unwrap(), b"beta");
        // Overwrite.
        storage.store(k1, b"alpha2").unwrap();
        assert_eq!(storage.load(k1).unwrap(), b"alpha2");
        let mut keys = storage.list().unwrap();
        keys.sort();
        assert_eq!(keys, vec![k1, k2, k3]);
        // Prune old checkpoints.
        storage.prune_before(2).unwrap();
        assert!(storage.load(k1).is_err());
        assert!(storage.load(k2).is_err());
        assert_eq!(storage.load(k3).unwrap(), b"gamma");
        // Delete is idempotent.
        storage.delete(k3).unwrap();
        storage.delete(k3).unwrap();
        assert!(matches!(storage.load(k3), Err(CkptError::NotFound { .. })));
    }

    #[test]
    fn memory_storage_contract() {
        let s = MemoryStorage::new();
        exercise(&s);
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn disk_storage_contract() {
        let dir = std::env::temp_dir().join(format!("redcr-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = DiskStorage::open(&dir).unwrap();
        exercise(&s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_file_name_round_trip() {
        let k = SnapshotKey::new(123, 45);
        assert_eq!(SnapshotKey::parse(&k.file_name()), Some(k));
        assert_eq!(SnapshotKey::parse("garbage.img"), None);
        assert_eq!(SnapshotKey::parse("ckpt-1-rank-x.img"), None);
    }

    #[test]
    fn cost_model_linear() {
        let m = StorageCostModel::parallel_fs();
        assert!((m.write_cost(1_000_000_000) - 2.0).abs() < 1e-9);
        assert!((m.read_cost(1_000_000_000) - 1.5).abs() < 1e-9);
        let z = StorageCostModel::zero();
        assert_eq!(z.write_cost(1 << 30), 0.0);
        assert_eq!(z.read_cost(1 << 30), 0.0);
    }

    #[test]
    fn cost_model_fixed_matches_paper_constants() {
        let m = StorageCostModel::fixed(120.0, 500.0);
        assert_eq!(m.write_cost(0), 120.0);
        assert_eq!(m.write_cost(1 << 30), 120.0);
        assert_eq!(m.read_cost(1 << 30), 500.0);
    }
}
