//! Memory exclusion (paper Section 2): applications can mark regions of
//! their state — temporary or scratch buffers — that need not survive a
//! restart. Excluded regions are zeroed before the image is written, which
//! both removes the data and makes the region collapse to almost nothing
//! under [run-length compression](crate::compress).
//!
//! On restore the excluded regions simply come back zeroed; the application
//! contract is that it re-derives them (the same contract BLCR-era memory
//! exclusion imposed via `cr_register_mem`).

use std::ops::Range;

/// A set of byte ranges to exclude from a process image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExclusionSet {
    ranges: Vec<Range<usize>>,
}

impl ExclusionSet {
    /// An empty set (nothing excluded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a byte range to exclude. Overlapping or adjacent ranges are
    /// merged.
    pub fn exclude(&mut self, range: Range<usize>) -> &mut Self {
        if range.is_empty() {
            return self;
        }
        self.ranges.push(range);
        self.normalize();
        self
    }

    fn normalize(&mut self) {
        self.ranges.sort_by_key(|r| r.start);
        let mut merged: Vec<Range<usize>> = Vec::with_capacity(self.ranges.len());
        for r in self.ranges.drain(..) {
            match merged.last_mut() {
                Some(last) if r.start <= last.end => {
                    last.end = last.end.max(r.end);
                }
                _ => merged.push(r),
            }
        }
        self.ranges = merged;
    }

    /// The normalized (sorted, disjoint) excluded ranges.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Total excluded bytes.
    pub fn excluded_bytes(&self) -> usize {
        self.ranges.iter().map(|r| r.end - r.start).sum()
    }

    /// Whether offset `at` falls in an excluded range.
    pub fn contains(&self, at: usize) -> bool {
        self.ranges.iter().any(|r| r.contains(&at))
    }

    /// Zeroes the excluded ranges of `image` in place. Ranges beyond the
    /// image length are clipped.
    pub fn apply(&self, image: &mut [u8]) {
        for r in &self.ranges {
            let start = r.start.min(image.len());
            let end = r.end.min(image.len());
            image[start..end].fill(0);
        }
    }
}

impl FromIterator<Range<usize>> for ExclusionSet {
    fn from_iter<I: IntoIterator<Item = Range<usize>>>(iter: I) -> Self {
        let mut set = ExclusionSet::new();
        for r in iter {
            set.exclude(r);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_overlapping_and_adjacent() {
        let mut s = ExclusionSet::new();
        s.exclude(10..20).exclude(15..25).exclude(25..30).exclude(50..60);
        assert_eq!(s.ranges(), &[10..30, 50..60]);
        assert_eq!(s.excluded_bytes(), 30);
    }

    #[test]
    fn empty_ranges_ignored() {
        let mut s = ExclusionSet::new();
        s.exclude(5..5);
        assert!(s.ranges().is_empty());
        assert_eq!(s.excluded_bytes(), 0);
    }

    #[test]
    fn apply_zeroes_only_excluded() {
        let mut s = ExclusionSet::new();
        s.exclude(2..4);
        let mut img = vec![9u8; 6];
        s.apply(&mut img);
        assert_eq!(img, vec![9, 9, 0, 0, 9, 9]);
    }

    #[test]
    fn apply_clips_past_end() {
        let mut s = ExclusionSet::new();
        s.exclude(4..100);
        let mut img = vec![1u8; 6];
        s.apply(&mut img);
        assert_eq!(img, vec![1, 1, 1, 1, 0, 0]);
    }

    #[test]
    fn contains_checks_membership() {
        let s: ExclusionSet = [0..2, 8..10].into_iter().collect();
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert!(s.contains(9));
        assert!(!s.contains(10));
    }

    #[test]
    fn exclusion_improves_compression() {
        let mut img: Vec<u8> = (0..10_000u32).map(|i| ((i * 37) >> 3) as u8 | 1).collect();
        let baseline = crate::compress::compress(&img).len();
        let mut s = ExclusionSet::new();
        s.exclude(1000..9000);
        s.apply(&mut img);
        let excluded = crate::compress::compress(&img).len();
        assert!(excluded < baseline / 2, "excluded {excluded} vs baseline {baseline}");
    }
}
