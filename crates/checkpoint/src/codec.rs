//! A compact, non-self-describing binary serde format for process images.
//!
//! Plays the role bincode plays in real checkpointing stacks: fixed-width
//! little-endian primitives, `u64` length prefixes for sequences, strings
//! and maps, `u32` variant indices for enums. The format is not
//! self-describing — decoding requires the same type that was encoded —
//! which is exactly the checkpoint/restore contract.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct SolverState { iter: u64, residual: f64, x: Vec<f64> }
//!
//! # fn main() -> Result<(), redcr_ckpt::CkptError> {
//! let state = SolverState { iter: 7, residual: 1e-9, x: vec![1.0, 2.0] };
//! let bytes = redcr_ckpt::to_bytes(&state)?;
//! let back: SolverState = redcr_ckpt::from_bytes(&bytes)?;
//! assert_eq!(back, state);
//! # Ok(())
//! # }
//! ```

use std::fmt::Display;

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

use crate::error::CkptError;
use crate::Result;

/// Serializes `value` into the binary format.
///
/// # Errors
///
/// Returns [`CkptError::Codec`] if the type cannot be represented (e.g.
/// a serializer-driven map of unknown length).
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    let mut ser = Serializer { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Deserializes a value of type `T` from bytes produced by [`to_bytes`].
///
/// # Errors
///
/// Returns [`CkptError::Codec`] on truncated or malformed input, or if
/// trailing bytes remain.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let mut de = Deserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(CkptError::Codec(format!("{} trailing bytes", de.input.len())));
    }
    Ok(value)
}

impl ser::Error for CkptError {
    fn custom<T: Display>(msg: T) -> Self {
        CkptError::Codec(msg.to_string())
    }
}

impl de::Error for CkptError {
    fn custom<T: Display>(msg: T) -> Self {
        CkptError::Codec(msg.to_string())
    }
}

struct Serializer {
    out: Vec<u8>,
}

impl Serializer {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = CkptError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i16(self, v: i16) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i32(self, v: i32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<()> {
        self.out.push(v);
        Ok(())
    }

    fn serialize_u16(self, v: u16) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u32(self, v: u32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<()> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let len = len.ok_or_else(|| {
            CkptError::Codec("sequences of unknown length are not supported".into())
        })?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        serde::Serializer::serialize_u32(&mut *self, variant_index)?;
        Ok(Compound { ser: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let len =
            len.ok_or_else(|| CkptError::Codec("maps of unknown length are not supported".into()))?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(Compound { ser: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        serde::Serializer::serialize_u32(&mut *self, variant_index)?;
        Ok(Compound { ser: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Compound<'a> {
    ser: &'a mut Serializer,
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = CkptError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = CkptError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = CkptError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = CkptError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = CkptError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut *self.ser)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = CkptError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = CkptError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(CkptError::Codec(format!(
                "unexpected end of input: need {n} bytes, have {}",
                self.input.len()
            )));
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_len(&mut self) -> Result<usize> {
        let bytes = self.take(8)?;
        let v = u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
        usize::try_from(v).map_err(|_| CkptError::Codec("length overflows usize".into()))
    }

    fn take_u32(&mut self) -> Result<u32> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
}

macro_rules! de_primitive {
    ($fn_name:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $fn_name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let bytes = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(bytes.try_into().expect("fixed width")))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = CkptError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(CkptError::Codec("format is not self-describing (deserialize_any)".into()))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(CkptError::Codec(format!("invalid bool byte {other}"))),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_i8(self.take(1)?[0] as i8)
    }

    de_primitive!(deserialize_i16, visit_i16, i16, 2);
    de_primitive!(deserialize_i32, visit_i32, i32, 4);
    de_primitive!(deserialize_i64, visit_i64, i64, 8);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_u8(self.take(1)?[0])
    }

    de_primitive!(deserialize_u16, visit_u16, u16, 2);
    de_primitive!(deserialize_u32, visit_u32, u32, 4);
    de_primitive!(deserialize_u64, visit_u64, u64, 8);
    de_primitive!(deserialize_f32, visit_f32, f32, 4);
    de_primitive!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.take_u32()?;
        let c = char::from_u32(v)
            .ok_or_else(|| CkptError::Codec(format!("invalid char scalar {v}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|e| CkptError::Codec(format!("invalid utf-8 string: {e}")))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(CkptError::Codec(format!("invalid option byte {other}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_map(Counted { de: self, remaining: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self, remaining: fields.len() })
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(CkptError::Codec("identifiers are not encoded".into()))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(CkptError::Codec("cannot skip values in a non-self-describing format".into()))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = CkptError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = CkptError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = CkptError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self)> {
        let index = self.de.take_u32()?;
        let value = seed.deserialize(IntoDeserializer::<CkptError>::into_deserializer(index))?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = CkptError;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self.de, remaining: len })
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self.de, remaining: fields.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn round_trip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn primitives() {
        round_trip(true);
        round_trip(false);
        round_trip(42u8);
        round_trip(-1i64);
        round_trip(u64::MAX);
        round_trip(std::f64::consts::PI);
        round_trip(f32::NEG_INFINITY);
        round_trip('λ');
        round_trip(String::from("hello checkpoint"));
        round_trip(String::new());
    }

    #[test]
    fn containers() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<f64>::new());
        round_trip(Some(5u32));
        round_trip(Option::<u32>::None);
        round_trip((1u8, -2i32, String::from("t")));
        let mut m = BTreeMap::new();
        m.insert(String::from("a"), vec![1.0f64, 2.0]);
        m.insert(String::from("b"), vec![]);
        round_trip(m);
        round_trip(vec![vec![vec![1u8]]]);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        name: String,
        values: Vec<f64>,
        flag: Option<bool>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Kind {
        Unit,
        New(u64),
        Tuple(u8, u8),
        Struct { x: f64, tag: String },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Image {
        rank: u32,
        nested: Nested,
        kinds: Vec<Kind>,
        unit: (),
    }

    #[test]
    fn derived_structs_and_enums() {
        round_trip(Image {
            rank: 17,
            nested: Nested {
                name: "cg-state".into(),
                values: vec![0.5, -0.25, 1e300],
                flag: Some(true),
            },
            kinds: vec![
                Kind::Unit,
                Kind::New(9),
                Kind::Tuple(1, 2),
                Kind::Struct { x: -0.0, tag: "t".into() },
            ],
            unit: (),
        });
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&vec![1u64, 2, 3]).unwrap();
        let err = from_bytes::<Vec<u64>>(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(err, CkptError::Codec(_)));
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<Option<u8>>(&[9]).is_err());
    }

    #[test]
    fn wrong_type_detected_via_structure() {
        // Encoding of a (short) Vec cannot decode as a String with absurd
        // length: it must error, not panic or allocate wildly.
        let bytes = to_bytes(&vec![u64::MAX]).unwrap();
        assert!(from_bytes::<String>(&bytes).is_err());
    }

    #[test]
    fn deterministic_encoding() {
        let a = to_bytes(&("x", 1u64, vec![2.0f64])).unwrap();
        let b = to_bytes(&("x", 1u64, vec![2.0f64])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn nan_bits_preserved() {
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let bytes = to_bytes(&nan).unwrap();
        let back: f64 = from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }
}
