//! The all-to-all **bookmark exchange** quiesce protocol (paper Section 2):
//! "Processes exchange message totals between all peers and wait until the
//! totals equalize."
//!
//! Every rank publishes how many user messages it has sent to each peer;
//! each rank then drains its transport until it has received exactly as
//! many messages from each peer as that peer claims to have sent. At that
//! point no user message is in flight: the drained-but-unmatched messages
//! sit in the [`CountingComm`] stash and become the checkpoint's channel
//! state.

use redcr_mpi::collectives::ReduceOp;
use redcr_mpi::{Communicator, Result};

use crate::counting::CountingComm;
use crate::snapshot::ChannelMessage;

/// Runs the bookmark quiesce. Collective: every rank must call it at the
/// same logical point. On return, all channels are empty and the returned
/// messages (possibly none) are the in-flight traffic that was drained on
/// behalf of this rank.
///
/// # Errors
///
/// Propagates transport errors (e.g. the run aborting mid-protocol).
pub fn quiesce<C: Communicator>(comm: &CountingComm<'_, C>) -> Result<Vec<ChannelMessage>> {
    let n = comm.size();
    let me = comm.rank().index();

    // Exchange bookmark totals: entry [i] of the reduced matrix row tells
    // this rank how many messages peer i has sent to us. A flattened n x n
    // matrix allreduce keeps the protocol simple and deterministic; each
    // rank contributes its own row of sent counts.
    let mut matrix = vec![0u64; n * n];
    let sent = comm.sent_counts();
    matrix[me * n..(me + 1) * n].copy_from_slice(&sent);
    let totals = comm.allreduce_u64(&matrix, ReduceOp::Sum)?;

    // expected[p] = how many messages p sent to me.
    let expected: Vec<u64> = (0..n).map(|p| totals[p * n + me]).collect();

    // Drain until the totals equalize.
    loop {
        let received = comm.received_counts();
        let all_equal = (0..n).all(|p| received[p] >= expected[p]);
        if all_equal {
            break;
        }
        comm.drain_one()?;
    }
    Ok(comm.channel_state())
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcr_mpi::{CostModel, Rank, Tag, World};

    #[test]
    fn quiesce_with_no_traffic_is_trivial() {
        World::builder(4)
            .cost_model(CostModel::zero())
            .run(|base| {
                let comm = CountingComm::new(base);
                let drained = quiesce(&comm)?;
                assert!(drained.is_empty());
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }

    #[test]
    fn quiesce_drains_in_flight_messages() {
        let report = World::builder(3)
            .cost_model(CostModel::zero())
            .run(|base| {
                let comm = CountingComm::new(base);
                // Rank 0 sends to 1 and 2 but nobody has received yet: the
                // messages are in flight at quiesce time.
                if comm.rank().index() == 0 {
                    comm.send(Rank::new(1), Tag::new(1), b"m1")?;
                    comm.send(Rank::new(2), Tag::new(2), b"m2")?;
                }
                let drained = quiesce(&comm)?;
                // After quiesce the receivers hold the in-flight message as
                // channel state and can still receive it normally.
                if comm.rank().index() == 1 {
                    assert_eq!(drained.len(), 1);
                    assert_eq!(drained[0].payload, b"m1".to_vec());
                    let (bytes, _) = comm.recv(Rank::new(0).into(), Tag::new(1).into())?;
                    assert_eq!(&bytes[..], b"m1");
                } else if comm.rank().index() == 2 {
                    assert_eq!(drained.len(), 1);
                } else {
                    assert!(drained.is_empty());
                }
                Ok(())
            })
            .unwrap();
        report.into_results().unwrap();
    }

    #[test]
    fn quiesce_after_matched_traffic_drains_nothing() {
        World::builder(2)
            .cost_model(CostModel::zero())
            .run(|base| {
                let comm = CountingComm::new(base);
                let peer = comm.rank().offset(1, 2);
                comm.send(peer, Tag::new(9), b"x")?;
                comm.recv(peer.into(), Tag::new(9).into())?;
                let drained = quiesce(&comm)?;
                assert!(drained.is_empty());
                assert_eq!(comm.drain_count(), 0);
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }

    #[test]
    fn repeated_quiesce_converges() {
        World::builder(2)
            .cost_model(CostModel::zero())
            .run(|base| {
                let comm = CountingComm::new(base);
                for round in 0..3u64 {
                    if comm.rank().index() == 0 {
                        comm.send(Rank::new(1), Tag::new(round), &[round as u8])?;
                    }
                    let drained = quiesce(&comm)?;
                    if comm.rank().index() == 1 {
                        assert_eq!(drained.len(), round as usize + 1, "stash accumulates");
                    }
                }
                // Rank 1 consumes everything afterwards, in tag order.
                if comm.rank().index() == 1 {
                    for round in 0..3u64 {
                        let (b, _) = comm.recv(Rank::new(0).into(), Tag::new(round).into())?;
                        assert_eq!(&b[..], &[round as u8]);
                    }
                }
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }
}
