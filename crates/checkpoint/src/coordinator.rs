//! The checkpoint coordinator: quiesce → capture → store → commit, with the
//! storage cost charged to virtual time (that charge *is* the paper's
//! checkpoint cost `c`).

use std::sync::Arc;

use serde::de::DeserializeOwned;
use serde::Serialize;

use redcr_mpi::Communicator;

use crate::bookmark;
use crate::chandy_lamport;
use crate::counting::CountingComm;
use crate::exclusion::ExclusionSet;
use crate::snapshot::{ChannelMessage, ProcessImage};
use crate::storage::{SnapshotKey, StableStorage, StorageCostModel};
use crate::Result;

/// Tag bit reserved by the replication layer
/// ([`redcr_red`-internal envelope traffic]); checkpoint markers must never
/// collide with it.
pub const REPLICATION_TAG_BIT: u64 = 1 << 45;

/// Which coordination protocol establishes the consistent cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoordinationProtocol {
    /// Open MPI-style all-to-all bookmark exchange (the paper's platform
    /// default).
    #[default]
    Bookmark,
    /// Chandy–Lamport marker protocol.
    ChandyLamport,
    /// No protocol: the application guarantees it checkpoints at a
    /// quiescent point (no user messages in flight). Cheapest; wrong if the
    /// guarantee is violated.
    AppQuiesced,
}

/// Receipt describing one completed coordinated checkpoint (per rank).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointReceipt {
    /// The stored image size in bytes.
    pub stored_bytes: usize,
    /// Virtual-time cost charged for the write, seconds.
    pub cost_seconds: f64,
    /// Number of in-flight messages captured as channel state.
    pub channel_messages: usize,
}

/// State recovered from a checkpoint at restart.
#[derive(Debug, Clone)]
pub struct Restored<T> {
    /// The application state.
    pub state: T,
    /// In-flight messages owed to this rank at the cut; feed them to
    /// [`CountingComm::with_restored_channel`].
    pub channel: Vec<ChannelMessage>,
    /// Virtual time at which the cut was taken, seconds.
    pub cut_time: f64,
    /// Virtual-time cost charged for the read, seconds.
    pub cost_seconds: f64,
}

/// How the image write is overlapped with execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WriteMode {
    /// Stop-and-write: the full write cost is charged to the application's
    /// virtual clock (BLCR's default behaviour; what the paper's `c`
    /// measures).
    #[default]
    Synchronous,
    /// Forked checkpointing (paper Section 2): a copy-on-write child writes
    /// the image while the parent resumes; only the brief fork/quiesce stop
    /// (seconds) is charged to the application. The write still happens —
    /// the checkpoint only commits (barrier) after it — but its cost is
    /// hidden from the compute timeline.
    Forked {
        /// Virtual seconds the application is stopped for the fork.
        stop_seconds: f64,
    },
}

/// Coordinates checkpoints of a whole communicator onto stable storage.
#[derive(Debug, Clone)]
pub struct CheckpointCoordinator {
    storage: Arc<dyn StableStorage>,
    cost: StorageCostModel,
    protocol: CoordinationProtocol,
    write_mode: WriteMode,
    compress: bool,
    exclusions: ExclusionSet,
}

impl CheckpointCoordinator {
    /// A coordinator writing to `storage` with zero storage cost, the
    /// bookmark protocol, and no compression/exclusion.
    pub fn new(storage: Arc<dyn StableStorage>) -> Self {
        CheckpointCoordinator {
            storage,
            cost: StorageCostModel::zero(),
            protocol: CoordinationProtocol::default(),
            write_mode: WriteMode::default(),
            compress: false,
            exclusions: ExclusionSet::new(),
        }
    }

    /// Sets the storage cost model.
    pub fn cost_model(mut self, cost: StorageCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the coordination protocol.
    pub fn protocol(mut self, protocol: CoordinationProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the write mode (synchronous or forked).
    pub fn write_mode(mut self, mode: WriteMode) -> Self {
        self.write_mode = mode;
        self
    }

    /// Enables RLE compression of application state.
    pub fn compressed(mut self, on: bool) -> Self {
        self.compress = on;
        self
    }

    /// Sets memory-exclusion regions applied to the serialized state.
    pub fn exclusions(mut self, exclusions: ExclusionSet) -> Self {
        self.exclusions = exclusions;
        self
    }

    /// The storage backend.
    pub fn storage(&self) -> &Arc<dyn StableStorage> {
        &self.storage
    }

    /// Takes coordinated checkpoint number `seq`. Collective: every rank of
    /// `comm` must call with the same `seq` at the same logical point.
    ///
    /// The write cost is charged to the rank's virtual clock, then a
    /// barrier commits the checkpoint (matching the synchronous semantics
    /// of the paper's BLCR-based service).
    ///
    /// # Errors
    ///
    /// Returns a protocol error if the run aborts mid-checkpoint, a codec
    /// error if the state cannot be serialized, or a storage error.
    pub fn checkpoint<C, S>(
        &self,
        comm: &CountingComm<'_, C>,
        seq: u64,
        state: &S,
    ) -> Result<CheckpointReceipt>
    where
        C: Communicator,
        S: Serialize,
    {
        let begin = comm.now();
        if let Some(rec) = comm.recorder() {
            rec.record(begin, redcr_mpi::trace::EventKind::CheckpointBegin { seq });
        }
        let channel = match self.protocol {
            CoordinationProtocol::Bookmark => bookmark::quiesce(comm)?,
            CoordinationProtocol::ChandyLamport => chandy_lamport::snapshot(comm, seq)?,
            CoordinationProtocol::AppQuiesced => comm.channel_state(),
        };
        let channel_messages = channel.len();
        // Wall-clock span over the real serialization work (capture,
        // exclusions, compression, framing) — the part of a checkpoint the
        // simulator actually pays for on the host, as opposed to the
        // modeled virtual write cost charged below.
        let encode_span = comm.prof().map(|p| p.span(redcr_mpi::prof::SpanKey::CheckpointEncode));
        let image = ProcessImage::capture_with(
            comm.rank().as_u32(),
            comm.now(),
            state,
            &self.exclusions,
            self.compress,
        )?
        .with_channel_state(channel);
        let bytes = image.to_stored_bytes()?;
        drop(encode_span);
        let cost = match self.write_mode {
            WriteMode::Synchronous => self.cost.write_cost(bytes.len()),
            WriteMode::Forked { stop_seconds } => stop_seconds,
        };
        let commit_span = comm.prof().map(|p| p.span(redcr_mpi::prof::SpanKey::CheckpointCommit));
        comm.compute(cost)?;
        self.storage.store(SnapshotKey::new(seq, comm.rank().as_u32()), &bytes)?;
        comm.barrier()?;
        drop(commit_span);
        // Recorded only after the commit barrier: a rank that dies
        // mid-checkpoint never emits a commit event.
        if let Some(rec) = comm.recorder() {
            rec.record(
                comm.now(),
                redcr_mpi::trace::EventKind::CheckpointCommit {
                    seq,
                    bytes: bytes.len() as u64,
                    cost,
                },
            );
        }
        if let Some(m) = comm.metrics() {
            let now = comm.now();
            m.inc(redcr_mpi::metrics::CounterKey::CheckpointCommits, now);
            m.observe(redcr_mpi::metrics::HistKey::CommitLatency, now - begin);
        }
        Ok(CheckpointReceipt { stored_bytes: bytes.len(), cost_seconds: cost, channel_messages })
    }

    /// Loads this rank's image from checkpoint `seq`, charging the read
    /// cost to virtual time.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::NotFound`](crate::CkptError::NotFound) if the
    /// image is missing, or codec/storage errors.
    pub fn restore<C, T>(&self, comm: &C, seq: u64) -> Result<Restored<T>>
    where
        C: Communicator,
        T: DeserializeOwned,
    {
        let bytes = self.storage.load(SnapshotKey::new(seq, comm.rank().as_u32()))?;
        let cost = self.cost.read_cost(bytes.len());
        comm.compute(cost)?;
        let image = ProcessImage::from_stored_bytes(&bytes)?;
        let state = image.restore()?;
        if let Some(rec) = comm.recorder() {
            rec.record(
                comm.now(),
                redcr_mpi::trace::EventKind::Restore { seq, cut: image.virtual_time },
            );
        }
        if let Some(m) = comm.metrics() {
            m.inc(redcr_mpi::metrics::CounterKey::Restores, comm.now());
        }
        Ok(Restored {
            state,
            channel: image.channel_state,
            cut_time: image.virtual_time,
            cost_seconds: cost,
        })
    }

    /// Deletes checkpoints older than `keep_from_seq` (call from one rank,
    /// or idempotently from all).
    ///
    /// # Errors
    ///
    /// Returns storage errors.
    pub fn prune_before(&self, keep_from_seq: u64) -> Result<()> {
        self.storage.prune_before(keep_from_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;
    use redcr_mpi::{CostModel, Rank, Tag, World};
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
    struct State {
        iter: u64,
        data: Vec<f64>,
    }

    #[test]
    fn checkpoint_then_restore_round_trip() {
        let storage: Arc<dyn StableStorage> = Arc::new(MemoryStorage::new());
        let coord = CheckpointCoordinator::new(Arc::clone(&storage));
        let coord2 = coord.clone();
        World::builder(3)
            .cost_model(CostModel::zero())
            .run(move |base| {
                let comm = CountingComm::new(base);
                let state = State { iter: 5, data: vec![comm.rank().index() as f64; 8] };
                coord2.checkpoint(&comm, 1, &state).unwrap();
                let restored: Restored<State> = coord2.restore(comm.inner(), 1).unwrap();
                assert_eq!(restored.state, state);
                assert!(restored.channel.is_empty());
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
        assert_eq!(storage.list().unwrap().len(), 3);
    }

    #[test]
    fn checkpoint_cost_charged_to_virtual_time() {
        let storage: Arc<dyn StableStorage> = Arc::new(MemoryStorage::new());
        let coord =
            CheckpointCoordinator::new(storage).cost_model(StorageCostModel::fixed(120.0, 500.0));
        let report = World::builder(2)
            .cost_model(CostModel::zero())
            .run(move |base| {
                let comm = CountingComm::new(base);
                let receipt = coord.checkpoint(&comm, 0, &vec![1u64, 2, 3]).unwrap();
                assert_eq!(receipt.cost_seconds, 120.0);
                Ok(comm.now())
            })
            .unwrap();
        for t in report.into_results().unwrap() {
            assert!(t >= 120.0, "virtual time {t} must include checkpoint cost");
        }
    }

    #[test]
    fn in_flight_messages_survive_checkpoint_restore() {
        let storage: Arc<dyn StableStorage> = Arc::new(MemoryStorage::new());
        let coord = CheckpointCoordinator::new(storage);
        World::builder(2)
            .cost_model(CostModel::zero())
            .run(move |base| {
                let comm = CountingComm::new(base);
                if comm.rank().index() == 0 {
                    comm.send(Rank::new(1), Tag::new(4), b"in-flight")?;
                }
                let receipt = coord.checkpoint(&comm, 9, &0u64).unwrap();
                if comm.rank().index() == 1 {
                    assert_eq!(receipt.channel_messages, 1);
                    // Simulate restart: a fresh CountingComm primed with the
                    // restored channel state.
                    let restored: Restored<u64> = coord.restore(comm.inner(), 9).unwrap();
                    let comm2 = CountingComm::with_restored_channel(comm.inner(), restored.channel);
                    let (b, _) = comm2.recv(Rank::new(0).into(), Tag::new(4).into())?;
                    assert_eq!(&b[..], b"in-flight");
                }
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }

    #[test]
    fn all_protocols_produce_equivalent_cuts_at_quiescent_points() {
        for protocol in [
            CoordinationProtocol::Bookmark,
            CoordinationProtocol::ChandyLamport,
            CoordinationProtocol::AppQuiesced,
        ] {
            let storage: Arc<dyn StableStorage> = Arc::new(MemoryStorage::new());
            let coord = CheckpointCoordinator::new(Arc::clone(&storage)).protocol(protocol);
            World::builder(4)
                .cost_model(CostModel::zero())
                .run(move |base| {
                    let comm = CountingComm::new(base);
                    // Fully matched traffic, then checkpoint.
                    let peer = comm.rank().offset(1, 4);
                    let prev = comm.rank().offset(-1, 4);
                    comm.send(peer, Tag::new(1), b"x")?;
                    comm.recv(prev.into(), Tag::new(1).into())?;
                    let receipt = coord.checkpoint(&comm, 2, &comm.rank().index()).unwrap();
                    assert_eq!(receipt.channel_messages, 0, "{protocol:?}");
                    Ok(())
                })
                .unwrap()
                .into_results()
                .unwrap();
            assert_eq!(storage.list().unwrap().len(), 4, "{protocol:?}");
        }
    }

    #[test]
    fn compression_and_exclusion_applied() {
        let storage: Arc<dyn StableStorage> = Arc::new(MemoryStorage::new());
        let coord = CheckpointCoordinator::new(Arc::clone(&storage)).compressed(true);
        World::builder(1)
            .cost_model(CostModel::zero())
            .run(move |base| {
                let comm = CountingComm::new(base);
                let state = State { iter: 1, data: vec![0.0; 10_000] };
                let receipt = coord.checkpoint(&comm, 0, &state).unwrap();
                assert!(receipt.stored_bytes < 2_000, "zeros compress: {}", receipt.stored_bytes);
                let restored: Restored<State> = coord.restore(comm.inner(), 0).unwrap();
                assert_eq!(restored.state, state);
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }

    #[test]
    fn forked_mode_hides_write_cost() {
        let storage: Arc<dyn StableStorage> = Arc::new(MemoryStorage::new());
        let sync_coord = CheckpointCoordinator::new(Arc::clone(&storage))
            .cost_model(StorageCostModel::fixed(120.0, 500.0));
        let forked_coord = CheckpointCoordinator::new(Arc::clone(&storage))
            .cost_model(StorageCostModel::fixed(120.0, 500.0))
            .write_mode(WriteMode::Forked { stop_seconds: 2.0 });
        let report = World::builder(1)
            .cost_model(CostModel::zero())
            .run(move |base| {
                let comm = CountingComm::new(base);
                let sync_receipt = sync_coord.checkpoint(&comm, 0, &1u64).unwrap();
                let after_sync = comm.now();
                let forked_receipt = forked_coord.checkpoint(&comm, 1, &1u64).unwrap();
                let after_forked = comm.now();
                assert_eq!(sync_receipt.cost_seconds, 120.0);
                assert_eq!(forked_receipt.cost_seconds, 2.0);
                assert!((after_forked - after_sync - 2.0).abs() < 1e-9);
                Ok(())
            })
            .unwrap();
        report.into_results().unwrap();
        // Both images are durably stored regardless of mode.
        assert_eq!(storage.list().unwrap().len(), 2);
    }

    #[test]
    fn missing_checkpoint_is_not_found() {
        let storage: Arc<dyn StableStorage> = Arc::new(MemoryStorage::new());
        let coord = CheckpointCoordinator::new(storage);
        World::builder(1)
            .cost_model(CostModel::zero())
            .run(move |base| {
                let r: Result<Restored<u64>> = coord.restore(base, 99);
                assert!(matches!(r, Err(crate::CkptError::NotFound { .. })));
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }
}
