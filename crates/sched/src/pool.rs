//! The M:N work-stealing pool.
//!
//! [`run_batch`] drives `n` rank tasks to completion on `workers` OS
//! threads. Each task is a stackful coroutine (x86-64 / AArch64) or, under
//! the fallback [`Backend::Threads`], a plain scoped thread. Tasks block
//! by calling [`park_current`], which freezes the coroutine and returns
//! control to the worker; a matching [`Waker::wake`] marks the task
//! runnable again on a sharded run-queue (per-worker local deque with a
//! steal path plus a shared injector for wakes arriving from outside the
//! pool).
//!
//! # Task state machine
//!
//! ```text
//!            pop            park        wake(PARKED)
//!   QUEUED ------> RUNNING ------> PARKED ----------> QUEUED
//!     ^               |
//!     |  wake(RUNNING)| finish
//!     |               v
//!     +-- NOTIFIED   DONE
//! ```
//!
//! The lost-wakeup race — a send that lands between the moment a task
//! decides to park and the moment the worker publishes `PARKED` — is
//! closed by the `NOTIFIED` state: `wake` on a `RUNNING` task CASes it to
//! `NOTIFIED`, and the worker's `RUNNING → PARKED` CAS then fails, turning
//! the park into an immediate requeue. Wakes on `QUEUED`/`NOTIFIED`/`DONE`
//! tasks are no-ops, so every runnable transition enqueues exactly once.
//!
//! # Determinism
//!
//! The pool adds no entropy: victim selection for stealing is a fixed
//! rotation, queues are plain FIFO deques, and there is no wall-clock or
//! RNG anywhere. Simulation *results* are nonetheless independent of
//! worker count and steal interleaving only because the simulator above
//! this crate orders everything by virtual time — the gate tests in the
//! workspace root prove that property at 1, 2, and 8 workers.
//!
//! All atomics use `SeqCst`: the wake/park handshake is a cross-thread
//! protocol whose proof sketch assumes a single total order, and none of
//! these atomics is on a path hot enough to earn a weaker ordering.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use redcr_prof::{CounterKey, ProfScope, Profiler, RankProf, SpanKey, TrackKey};

use crate::stack::{Stack, DEFAULT_STACK_BYTES};

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
use crate::ctx;

// ---------------------------------------------------------------------------
// Configuration

/// How tasks are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Stackful coroutines multiplexed onto a work-stealing worker pool.
    Coro,
    /// One scoped OS thread per task (pre-M:N behavior). The fallback on
    /// architectures without a context-switch port, and selectable via
    /// `REDCR_EXEC=threads` to measure the thread-per-rank baseline.
    Threads,
}

impl Backend {
    /// The preferred backend for this architecture.
    pub fn native() -> Backend {
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
        {
            Backend::Coro
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            Backend::Threads
        }
    }
}

/// Pool sizing for one [`run_batch`] call.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads driving the batch (clamped to `[1, n_tasks]`).
    pub workers: usize,
    /// Bytes of coroutine stack per task.
    pub stack_bytes: usize,
    /// Execution backend.
    pub backend: Backend,
}

impl PoolConfig {
    /// Resolves pool sizing: an explicit worker count (from
    /// `ExecutorConfig::workers` / `WorldBuilder::workers`) wins, then the
    /// `REDCR_WORKERS` environment variable, then
    /// `available_parallelism()`. `REDCR_EXEC=threads` selects the
    /// thread-per-task backend; `REDCR_STACK_KB` sizes coroutine stacks.
    pub fn resolve(explicit_workers: Option<usize>, n_tasks: usize) -> PoolConfig {
        let backend = match std::env::var("REDCR_EXEC").ok().as_deref() {
            Some("threads") => Backend::Threads,
            _ => Backend::native(),
        };
        let workers = explicit_workers
            .or_else(|| std::env::var("REDCR_WORKERS").ok().and_then(|s| s.parse().ok()))
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
            })
            .clamp(1, n_tasks.max(1));
        let stack_bytes = std::env::var("REDCR_STACK_KB")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map(|kb| kb * 1024)
            .unwrap_or(DEFAULT_STACK_BYTES);
        PoolConfig { workers, stack_bytes, backend }
    }
}

// ---------------------------------------------------------------------------
// Task

const QUEUED: u8 = 0;
const RUNNING: u8 = 1;
const PARKED: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

const YK_PARK: u8 = 0;
const YK_YIELD: u8 = 1;
const YK_DONE: u8 = 2;

type TaskBody = Box<dyn FnOnce() + Send>;

/// One rank task. Fields split into two synchronization regimes: `state`
/// (and the thread-backend permit) are the cross-thread handshake; every
/// other field is touched only by the single worker currently running the
/// task or holding it popped from a run-queue.
pub(crate) struct Task {
    state: AtomicU8,
    /// How the task last switched back to its worker (`YK_*`); read by
    /// the worker immediately after regaining control.
    yield_kind: Cell<u8>,
    /// Frozen continuation stack pointer (coro backend).
    sp: Cell<usize>,
    /// Address of the running worker's local resume slot, so a parking
    /// task knows where to switch back to.
    ret_sp: Cell<usize>,
    stack: Option<Stack>,
    body: UnsafeCell<Option<TaskBody>>,
    /// Thread-backend park permit (wake-before-park safe).
    permit: Mutex<bool>,
    unpark: Condvar,
}

// SAFETY: `yield_kind`, `sp`, `ret_sp`, `stack` and `body` are accessed
// only by the worker that owns the task at that moment; ownership is
// handed off through the `state` machine (SeqCst CAS) and the run-queue
// mutexes, which order those plain accesses across threads. `state`,
// `permit` and `unpark` are inherently thread-safe.
unsafe impl Sync for Task {}

impl Task {
    fn new(stack: Option<Stack>, body: TaskBody) -> Task {
        Task {
            state: AtomicU8::new(QUEUED),
            yield_kind: Cell::new(YK_PARK),
            sp: Cell::new(0),
            ret_sp: Cell::new(0),
            stack,
            body: UnsafeCell::new(Some(body)),
            permit: Mutex::new(false),
            unpark: Condvar::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Pool

/// Counters for one finished batch; mirrors of these also flow into
/// `redcr-prof` worker shards when profiling is on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Parked tasks marked runnable by a wake.
    pub task_wakes: u64,
    /// Tasks a worker stole from another worker's deque.
    pub steals: u64,
    /// Tasks a worker popped from its own deque.
    pub local_hits: u64,
    /// Times a worker went to sleep on the idle condvar.
    pub worker_parks: u64,
}

#[derive(Default)]
struct StatsCell {
    task_wakes: AtomicU64,
    steals: AtomicU64,
    local_hits: AtomicU64,
    worker_parks: AtomicU64,
}

impl StatsCell {
    fn snapshot(&self) -> BatchStats {
        BatchStats {
            task_wakes: self.task_wakes.load(SeqCst),
            steals: self.steals.load(SeqCst),
            local_hits: self.local_hits.load(SeqCst),
            worker_parks: self.worker_parks.load(SeqCst),
        }
    }
}

pub(crate) struct PoolShared {
    backend: Backend,
    tasks: Vec<Task>,
    /// Per-worker local run-queues; owner pops the front, thieves pop the
    /// back.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Overflow queue for wakes arriving from threads outside the pool.
    injector: Mutex<VecDeque<usize>>,
    /// Missed-wake epoch: bumped by every enqueue that observes idlers,
    /// so a worker that re-checks the epoch under the lock before
    /// sleeping can never sleep through a wake.
    idle: Mutex<u64>,
    idle_cv: Condvar,
    idlers: AtomicUsize,
    /// Tasks not yet `DONE`; workers exit when this reaches zero.
    live: AtomicUsize,
    stats: StatsCell,
}

impl PoolShared {
    fn new(backend: Backend, workers: usize, tasks: Vec<Task>) -> PoolShared {
        let live = tasks.len();
        PoolShared {
            backend,
            tasks,
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle: Mutex::new(0),
            idle_cv: Condvar::new(),
            idlers: AtomicUsize::new(0),
            live: AtomicUsize::new(live),
            stats: StatsCell::default(),
        }
    }

    /// Marks a coro task runnable. See the state-machine diagram in the
    /// module docs; this is the only producer of `QUEUED` and `NOTIFIED`.
    fn wake_coro(&self, idx: usize) {
        let t = &self.tasks[idx];
        // detlint::allow(R10, reason = "bounded CAS retry: each iteration re-reads a 4-state machine whose only concurrent writers make forward progress; it cannot spin more than a handful of times")
        loop {
            match t.state.load(SeqCst) {
                PARKED => {
                    if t.state.compare_exchange(PARKED, QUEUED, SeqCst, SeqCst).is_ok() {
                        self.stats.task_wakes.fetch_add(1, SeqCst);
                        self.enqueue(idx);
                        return;
                    }
                }
                RUNNING => {
                    if t.state.compare_exchange(RUNNING, NOTIFIED, SeqCst, SeqCst).is_ok() {
                        self.stats.task_wakes.fetch_add(1, SeqCst);
                        return;
                    }
                }
                // QUEUED / NOTIFIED: already runnable. DONE: nothing to do.
                _ => return,
            }
        }
    }

    /// Pushes a runnable task: onto the current worker's own deque when
    /// the waker runs on a worker of this pool, else onto the injector.
    fn enqueue(&self, idx: usize) {
        let me = self as *const PoolShared as usize;
        let target = WORKER.with(|w| match w.get() {
            Some((pool, k)) if pool == me => Some(k),
            _ => None,
        });
        match target {
            Some(k) => self.queues[k].lock().push_back(idx),
            None => self.injector.lock().push_back(idx),
        }
        if self.idlers.load(SeqCst) > 0 {
            *self.idle.lock() += 1;
            self.idle_cv.notify_all();
        }
    }

    fn idle_epoch(&self) -> u64 {
        *self.idle.lock()
    }

    fn has_work(&self) -> bool {
        if !self.injector.lock().is_empty() {
            return true;
        }
        self.queues.iter().any(|q| !q.lock().is_empty())
    }

    /// Wakes every idle worker (batch finished, or a last task completed).
    fn wake_idlers(&self) {
        *self.idle.lock() += 1;
        self.idle_cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Thread-local context

thread_local! {
    /// Waker of the task currently executing on this thread, if any.
    static CURRENT: Cell<Option<Waker>> = const { Cell::new(None) };
    /// (pool identity, worker index) when this thread is a pool worker.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Handle that marks one task of one batch runnable. Cloneable and
/// `Send + Sync`; waking a finished task or a finished batch is a no-op,
/// so stale wakers parked in mailbox waiter slots are harmless.
#[derive(Clone)]
pub struct Waker {
    shared: Arc<PoolShared>,
    idx: usize,
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Waker(task {})", self.idx)
    }
}

impl Waker {
    /// Marks the task runnable. Never blocks; never takes a lock that is
    /// held while calling into user code, so callers may invoke it while
    /// holding their own leaf locks dropped or held — though dropping
    /// first preserves the workspace's leaf-lock discipline.
    pub fn wake(&self) {
        match self.shared.backend {
            Backend::Threads => {
                let t = &self.shared.tasks[self.idx];
                *t.permit.lock() = true;
                t.unpark.notify_one();
                self.shared.stats.task_wakes.fetch_add(1, SeqCst);
            }
            Backend::Coro => self.shared.wake_coro(self.idx),
        }
    }

    fn park(&self) {
        let t = &self.shared.tasks[self.idx];
        match self.shared.backend {
            Backend::Threads => {
                let mut g = t.permit.lock();
                // detlint::allow(R10, reason = "threads-backend park: the condvar wait inside IS the park — under REDCR_EXEC=threads each rank owns an OS thread and blocking it is the intended suspension; the coro backend takes the context-switch arm instead")
                while !*g {
                    t.unpark.wait(&mut g);
                }
                *g = false;
            }
            Backend::Coro => {
                #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
                {
                    t.yield_kind.set(YK_PARK);
                    // SAFETY: `ret_sp` points at the live resume slot of
                    // the worker that switched us in; freezing into `sp`
                    // and resuming the worker is the protocol every
                    // worker↔task transfer follows.
                    unsafe {
                        let to = (t.ret_sp.get() as *const usize).read();
                        ctx::redcr_ctx_switch(t.sp.as_ptr(), to);
                    }
                }
                #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
                std::process::abort();
            }
        }
    }
}

/// Returns a waker for the task currently running on this thread, or
/// `None` when called from a plain (non-pool) thread.
pub fn current_waker() -> Option<Waker> {
    CURRENT.with(|c| {
        let w = c.take();
        let out = w.clone();
        c.set(w);
        out
    })
}

/// Blocks the current task until [`Waker::wake`] is called on it. On a
/// pool task this freezes the coroutine and runs other tasks; on a plain
/// thread it degrades to an OS yield so polling callers stay live.
pub fn park_current() {
    match current_waker() {
        Some(w) => w.park(),
        // detlint::allow(R8, reason = "off-pool degradation only: a plain thread (tests, the driver) polling a mailbox donates its OS timeslice; pool tasks always take the waker arm above")
        None => std::thread::yield_now(),
    }
}

/// Cooperatively reschedules the current task behind other runnable work.
/// Cheap no-op when nothing else is runnable on this worker; falls back to
/// `std::thread::yield_now()` off-pool or under the threads backend.
pub fn yield_now() {
    let on_coro_worker = CURRENT.with(|c| {
        let w = c.take();
        let coro = matches!(&w, Some(w) if w.shared.backend == Backend::Coro);
        let out = if coro { w.clone() } else { None };
        c.set(w);
        out
    });
    let Some(w) = on_coro_worker else {
        std::thread::yield_now();
        return;
    };
    if !w.shared.has_work() {
        return;
    }
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    {
        let t = &w.shared.tasks[w.idx];
        t.yield_kind.set(YK_YIELD);
        // SAFETY: same protocol as `Waker::park`.
        unsafe {
            let to = (t.ret_sp.get() as *const usize).read();
            ctx::redcr_ctx_switch(t.sp.as_ptr(), to);
        }
    }
}

// ---------------------------------------------------------------------------
// Batch execution

/// Everything a finished batch reports.
pub struct BatchResult<T> {
    /// Per-task outcome, indexed by task id; `Err` carries the panic
    /// payload of a task whose body panicked.
    pub results: Vec<std::thread::Result<T>>,
    /// Scheduler counters for the whole batch.
    pub stats: BatchStats,
}

/// Runs `f(0..n)` to completion as `n` tasks on the configured pool and
/// returns every task's outcome plus scheduler counters.
///
/// When `profiler` is supplied, each worker records a `worker{k}` shard:
/// idle spans, steal/local-hit/worker-park counters and run-queue-depth
/// samples, absorbed into the profiler when the batch ends.
pub fn run_batch<T, F>(
    cfg: &PoolConfig,
    n: usize,
    profiler: Option<&Profiler>,
    f: F,
) -> BatchResult<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let backend = match cfg.backend {
        Backend::Coro => Backend::native(), // downgrades off-arch requests
        Backend::Threads => Backend::Threads,
    };
    let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    let mut tasks = Vec::with_capacity(n);
    for (i, slot) in results.iter().enumerate() {
        let fref = &f;
        let body: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let out = catch_unwind(AssertUnwindSafe(|| fref(i)));
            *slot.lock() = Some(out);
        });
        // SAFETY: lifetime erasure only. Every body is consumed (or
        // dropped) before `run_batch` returns — workers are joined and the
        // batch runs to `live == 0` — so no borrow of `f`/`results`
        // escapes this call. Wakers may outlive the call holding the
        // `Arc`, but by then every body slot is `None`.
        let body: TaskBody =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, TaskBody>(body) };
        let stack = match backend {
            Backend::Coro => Some(Stack::new(cfg.stack_bytes)),
            Backend::Threads => None,
        };
        tasks.push(Task::new(stack, body));
    }
    let workers = cfg.workers.clamp(1, n.max(1));
    let shared = Arc::new(PoolShared::new(backend, workers, tasks));

    match backend {
        Backend::Coro => run_coro(&shared, workers, profiler),
        Backend::Threads => run_threads(&shared),
    }

    let stats = shared.stats.snapshot();
    let results =
        results
            .into_iter()
            .map(|m| match m.into_inner() {
                Some(r) => r,
                // Unreachable: a batch only ends once every body ran.
                None => Err(Box::new("redcr-sched: task produced no result")
                    as Box<dyn std::any::Any + Send>),
            })
            .collect();
    BatchResult { results, stats }
}

fn run_threads(shared: &Arc<PoolShared>) {
    std::thread::scope(|s| {
        for idx in 0..shared.tasks.len() {
            let shared = Arc::clone(shared);
            s.spawn(move || {
                let prev =
                    CURRENT.with(|c| c.replace(Some(Waker { shared: Arc::clone(&shared), idx })));
                // SAFETY: this scoped thread is the only accessor of its
                // own task's body slot.
                let body = unsafe { (*shared.tasks[idx].body.get()).take() };
                if let Some(b) = body {
                    b();
                }
                shared.live.fetch_sub(1, SeqCst);
                CURRENT.with(|c| c.set(prev));
            });
        }
    });
}

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn run_coro(shared: &Arc<PoolShared>, workers: usize, profiler: Option<&Profiler>) {
    // Forge each task's initial continuation now that the task vector has
    // its final address.
    for t in &shared.tasks {
        if let Some(stack) = &t.stack {
            // SAFETY: freshly allocated, exclusively owned stack.
            let sp = unsafe { ctx::forge_stack(stack.top(), t as *const Task as usize) };
            t.sp.set(sp);
        }
    }
    for idx in 0..shared.tasks.len() {
        shared.queues[idx % workers].lock().push_back(idx);
    }
    if workers > 1 {
        std::thread::scope(|s| {
            for k in 1..workers {
                let shared = &shared;
                s.spawn(move || worker_loop(shared, k, profiler));
            }
            // The driver thread is worker 0: with one worker the whole
            // batch runs as a user-space event loop with no thread spawns
            // and no condvar traffic at all.
            worker_loop(shared, 0, profiler);
        });
    } else {
        worker_loop(shared, 0, profiler);
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn run_coro(_shared: &Arc<PoolShared>, _workers: usize, _profiler: Option<&Profiler>) {
    // `Backend::native()` never selects Coro off-arch.
    std::process::abort();
}

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn worker_loop(shared: &Arc<PoolShared>, k: usize, profiler: Option<&Profiler>) {
    let me = Arc::as_ptr(shared) as usize;
    // Save and restore surrounding context so nested batches (a pool task
    // that itself runs `run_batch`) and back-to-back batches both work.
    let prev_worker = WORKER.with(|w| w.replace(Some((me, k))));
    let prev_current = CURRENT.with(|c| c.take());
    let shard = profiler.map(|p| p.shard());
    while shared.live.load(SeqCst) != 0 {
        match next_task(shared, k, shard.as_ref()) {
            Some(idx) => run_task(shared, idx, k),
            None => idle_wait(shared, shard.as_ref()),
        }
    }
    // Everything finished: make sure no sibling stays asleep.
    shared.wake_idlers();
    if let (Some(p), Some(s)) = (profiler, shard) {
        p.absorb(ProfScope::Worker(k as u32), s.drain());
    }
    CURRENT.with(|c| c.set(prev_current));
    WORKER.with(|w| w.set(prev_worker));
}

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn next_task(shared: &PoolShared, k: usize, shard: Option<&RankProf>) -> Option<usize> {
    // NB: pop and measure under one acquisition — an `if let` on the
    // locked temporary would hold the guard across its body (2021-edition
    // temporary scope) and the depth sample would self-deadlock.
    let mut q = shared.queues[k].lock();
    let popped = q.pop_front();
    let depth = q.len();
    drop(q);
    if let Some(idx) = popped {
        shared.stats.local_hits.fetch_add(1, SeqCst);
        if let Some(s) = shard {
            s.count(CounterKey::LocalHits);
            s.sample(TrackKey::RunQueueDepth, depth as f64);
        }
        return Some(idx);
    }
    if let Some(idx) = shared.injector.lock().pop_front() {
        return Some(idx);
    }
    let w = shared.queues.len();
    for d in 1..w {
        let victim = (k + d) % w;
        if let Some(idx) = shared.queues[victim].lock().pop_back() {
            shared.stats.steals.fetch_add(1, SeqCst);
            if let Some(s) = shard {
                s.count(CounterKey::Steals);
            }
            return Some(idx);
        }
    }
    None
}

/// Parks the worker on the idle condvar until new work is enqueued or the
/// batch drains. The epoch handshake makes this missed-wake safe: any
/// enqueue that observes `idlers > 0` bumps the epoch under the lock, so
/// an enqueue landing between our queue re-scan and the `wait` flips the
/// epoch and the wait never starts.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn idle_wait(shared: &PoolShared, shard: Option<&RankProf>) {
    shared.idlers.fetch_add(1, SeqCst);
    let epoch = shared.idle_epoch();
    if !shared.has_work() && shared.live.load(SeqCst) != 0 {
        shared.stats.worker_parks.fetch_add(1, SeqCst);
        let _idle = shard.map(|s| {
            s.count(CounterKey::WorkerParks);
            s.span(SpanKey::WorkerIdle)
        });
        let mut g = shared.idle.lock();
        while *g == epoch && shared.live.load(SeqCst) != 0 {
            shared.idle_cv.wait(&mut g);
        }
    }
    shared.idlers.fetch_sub(1, SeqCst);
}

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn run_task(shared: &Arc<PoolShared>, idx: usize, k: usize) {
    let t = &shared.tasks[idx];
    t.state.store(RUNNING, SeqCst);
    let mut resume_slot: usize = 0;
    t.ret_sp.set(&mut resume_slot as *mut usize as usize);
    CURRENT.with(|c| c.set(Some(Waker { shared: Arc::clone(shared), idx })));
    // SAFETY: `sp` holds either the forged initial frame or the frame the
    // task froze when it last parked/yielded; `resume_slot` lives until
    // the task switches back, which is the only way control returns here.
    unsafe { ctx::redcr_ctx_switch(&mut resume_slot, t.sp.get()) };
    CURRENT.with(|c| c.set(None));
    if let Some(stack) = &t.stack {
        stack.check_canary();
    }
    match t.yield_kind.get() {
        YK_DONE => {
            t.state.store(DONE, SeqCst);
            if shared.live.fetch_sub(1, SeqCst) == 1 {
                shared.wake_idlers();
            }
        }
        YK_YIELD => {
            t.state.store(QUEUED, SeqCst);
            shared.queues[k].lock().push_back(idx);
        }
        _ => {
            // YK_PARK. A wake that raced us flipped RUNNING → NOTIFIED;
            // honor it by requeueing instead of parking.
            if t.state.compare_exchange(RUNNING, PARKED, SeqCst, SeqCst).is_err() {
                t.state.store(QUEUED, SeqCst);
                shared.queues[k].lock().push_back(idx);
            }
        }
    }
}

/// First Rust frame of every coroutine; `redcr_task_start` lands here with
/// the task pointer as its argument. Never returns — a finished task
/// switches back to its worker with `YK_DONE`.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
pub(crate) extern "C" fn redcr_task_entry(task: *const Task) {
    // SAFETY: `task` is the pointer `run_coro` forged into this stack; the
    // `PoolShared` holding it outlives the batch.
    let t = unsafe { &*task };
    // SAFETY: only the worker running the task touches its body slot.
    let body = unsafe { (*t.body.get()).take() };
    if catch_unwind(AssertUnwindSafe(|| {
        if let Some(b) = body {
            b();
        }
    }))
    .is_err()
    {
        // The body wraps user code in its own catch_unwind; a panic
        // reaching this frame would otherwise unwind through the forged
        // trampoline frame, which has no unwind info. Die loudly.
        std::process::abort();
    }
    t.yield_kind.set(YK_DONE);
    let mut scratch: usize = 0;
    // SAFETY: final switch back to the owning worker; never resumed.
    unsafe {
        let to = (t.ret_sp.get() as *const usize).read();
        ctx::redcr_ctx_switch(&mut scratch, to);
    }
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workers: usize, backend: Backend) -> PoolConfig {
        PoolConfig { workers, stack_bytes: 128 * 1024, backend }
    }

    fn unwrap_all<T>(r: BatchResult<T>) -> Vec<T> {
        r.results.into_iter().map(|x| x.unwrap()).collect()
    }

    #[test]
    fn plain_batch_runs_every_task() {
        for workers in [1, 4] {
            let out = run_batch(&cfg(workers, Backend::Coro), 100, None, |i| i * 2);
            assert_eq!(unwrap_all(out), (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let out = run_batch(&cfg(2, Backend::Coro), 0, None, |i| i);
        assert!(out.results.is_empty());
    }

    fn park_wake_pairs(backend: Backend, workers: usize) {
        // Even task 2k parks until its partner 2k+1 wakes it. The partner
        // spins on the published waker slot, yielding so a single worker
        // can interleave them.
        let n = 16;
        let slots: Vec<Mutex<Option<Waker>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let out = run_batch(&cfg(workers, backend), n, None, |i| {
            if i % 2 == 0 {
                *slots[i].lock() = Some(current_waker().expect("on a pool task"));
                park_current();
                i
            } else {
                loop {
                    if let Some(w) = slots[i - 1].lock().take() {
                        w.wake();
                        return i;
                    }
                    yield_now();
                }
            }
        });
        assert_eq!(unwrap_all(out), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn park_wake_coro_one_worker() {
        park_wake_pairs(Backend::Coro, 1);
    }

    #[test]
    fn park_wake_coro_many_workers() {
        park_wake_pairs(Backend::Coro, 4);
    }

    #[test]
    fn park_wake_threads_backend() {
        park_wake_pairs(Backend::Threads, 1);
    }

    #[test]
    fn wake_before_park_is_not_lost() {
        // A wake that lands while the task is RUNNING (here: a self-wake,
        // the deterministic stand-in for a send racing the park) must flip
        // the state to NOTIFIED so the subsequent park requeues instead of
        // sleeping forever.
        let out = run_batch(&cfg(1, Backend::Coro), 1, None, |_| {
            let w = current_waker().expect("on a pool task");
            w.wake();
            park_current(); // absorbed by the pending notification
            42
        });
        assert_eq!(unwrap_all(out), vec![42]);
    }

    #[test]
    fn panicking_task_is_reported_not_fatal() {
        let out = run_batch(&cfg(2, Backend::Coro), 4, None, |i| {
            assert!(i != 2, "task two fails");
            i
        });
        assert!(out.results[2].is_err());
        for (i, r) in out.results.iter().enumerate() {
            if i != 2 {
                assert!(r.is_ok());
            }
        }
    }

    #[test]
    fn oversubscribed_yield_storm_completes_and_steals() {
        let out = run_batch(&cfg(4, Backend::Coro), 64, None, |i| {
            let mut acc = i as u64;
            for _ in 0..50 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                yield_now();
            }
            acc
        });
        assert_eq!(out.results.len(), 64);
        assert!(out.results.iter().all(|r| r.is_ok()));
        assert!(out.stats.local_hits > 0);
    }

    #[test]
    fn nested_batches_work() {
        let out = run_batch(&cfg(2, Backend::Coro), 3, None, |i| {
            let inner = run_batch(&cfg(1, Backend::Coro), 4, None, move |j| i * 10 + j);
            unwrap_all(inner).into_iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..3).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(unwrap_all(out), expect);
    }

    #[test]
    fn stats_count_wakes() {
        let slots: Vec<Mutex<Option<Waker>>> = (0..8).map(|_| Mutex::new(None)).collect();
        let out = run_batch(&cfg(2, Backend::Coro), 8, None, |i| {
            if i % 2 == 0 {
                *slots[i].lock() = Some(current_waker().expect("on a pool task"));
                park_current();
            } else {
                loop {
                    if let Some(w) = slots[i - 1].lock().take() {
                        w.wake();
                        break;
                    }
                    yield_now();
                }
            }
        });
        assert!(out.stats.task_wakes >= 4, "stats: {:?}", out.stats);
    }

    #[test]
    fn resolve_clamps_workers_to_tasks() {
        let cfg = PoolConfig { workers: 64, stack_bytes: 0, backend: Backend::Coro };
        let _ = cfg;
        let resolved = PoolConfig::resolve(Some(64), 4);
        assert_eq!(resolved.workers, 4);
        let one = PoolConfig::resolve(Some(0), 4);
        assert_eq!(one.workers, 1);
    }
}
