//! Heap-allocated coroutine stacks.
//!
//! Plain `alloc`-backed slabs, 16-byte aligned, with a canary word at the
//! low end. There are no guard pages (the workspace is `std`-only, no
//! libc mmap), so overflow detection is best-effort: the canary is
//! checked every time a task parks or finishes, and a clobbered canary
//! aborts the process immediately — continuing after an overflow would
//! corrupt an adjacent allocation and silently break the determinism
//! contract, which is strictly worse than dying loudly.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};

const CANARY: usize = 0x5ed0_c0de_dead_57ac;
const ALIGN: usize = 16;

/// Minimum stack we will ever hand a task, however `REDCR_STACK_KB` is set.
pub(crate) const MIN_STACK_BYTES: usize = 32 * 1024;

/// Default per-task stack: 128 KiB. detlint's R9 pass bounds every
/// coroutine root's deepest call chain at under 8 KiB of estimated
/// frames, so 128 KiB is already a ~16× margin; keeping the default this
/// small lets a 4096-rank world fit its stacks in half a GiB. Deep-stack
/// experiments can restore the old default with `REDCR_STACK_KB=1024`.
/// Note the failure mode if this is ever set too low: a canary *abort*
/// on park/exit (best-effort, after the fact) — not a guard-page fault
/// at the overflowing write, because these are plain heap slabs.
pub(crate) const DEFAULT_STACK_BYTES: usize = 128 * 1024;

/// One owned coroutine stack.
#[derive(Debug)]
pub(crate) struct Stack {
    base: *mut u8,
    layout: Layout,
}

// The stack is exclusively owned by its task; the pool moves tasks across
// worker threads only while no frame on the stack is live on any other
// thread (the task is frozen inside `redcr_ctx_switch`).
unsafe impl Send for Stack {}
unsafe impl Sync for Stack {}

impl Stack {
    pub(crate) fn new(bytes: usize) -> Stack {
        let size = bytes.max(MIN_STACK_BYTES) & !(ALIGN - 1);
        let layout = match Layout::from_size_align(size, ALIGN) {
            Ok(l) => l,
            Err(_) => std::process::abort(), // unreachable: size/align are sane
        };
        let base = unsafe { alloc(layout) };
        if base.is_null() {
            handle_alloc_error(layout);
        }
        unsafe { (base as *mut usize).write(CANARY) };
        Stack { base, layout }
    }

    /// One-past-the-end address; stacks grow downward from here.
    pub(crate) fn top(&self) -> *mut u8 {
        unsafe { self.base.add(self.layout.size()) }
    }

    /// Aborts the process if the low-end canary was overwritten, i.e. the
    /// task's frames grew past the end of its slab.
    pub(crate) fn check_canary(&self) {
        let live = unsafe { (self.base as *const usize).read() };
        if live != CANARY {
            eprintln!(
                "redcr-sched: coroutine stack overflow detected ({} KiB slab); \
                 raise REDCR_STACK_KB",
                self.layout.size() / 1024
            );
            std::process::abort();
        }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        unsafe { dealloc(self.base, self.layout) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_is_aligned_and_canaried() {
        let s = Stack::new(64 * 1024);
        assert_eq!(s.top() as usize % ALIGN, 0);
        assert_eq!(s.top() as usize - s.base as usize, 64 * 1024);
        s.check_canary();
    }

    #[test]
    fn tiny_request_is_clamped_to_minimum() {
        let s = Stack::new(1);
        assert!(s.top() as usize - s.base as usize >= MIN_STACK_BYTES);
    }
}
