//! # redcr-sched — M:N rank scheduler
//!
//! Runs the simulator's rank bodies as lightweight tasks multiplexed onto
//! a small work-stealing pool of OS threads, instead of one OS thread per
//! rank. A rank that would block — a receive with no matching message, a
//! barrier, a checkpoint quiesce — *yields* its coroutine back to the
//! worker via [`park_current`]; the sender that later satisfies it calls
//! [`Waker::wake`], which marks the task runnable on a sharded run-queue.
//! The spin-then-condvar-park fallback this replaces disappears from the
//! hot path entirely: on a single worker the whole world becomes a
//! user-space event loop with zero thread spawns and zero condvar traffic
//! per segment, and with `W` workers the batch work-steals across them.
//!
//! ## Quick start
//!
//! ```
//! use redcr_sched::{run_batch, Backend, PoolConfig};
//!
//! let cfg = PoolConfig { workers: 2, stack_bytes: 128 * 1024, backend: Backend::Coro };
//! let batch = run_batch(&cfg, 8, None, |task| task * task);
//! let squares: Vec<usize> = batch.results.into_iter().map(|r| r.unwrap()).collect();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```
//!
//! ## Knobs
//!
//! | Source | Meaning |
//! |---|---|
//! | `ExecutorConfig::workers` / `WorldBuilder::workers` | explicit worker count (wins) |
//! | `REDCR_WORKERS` | worker count when no explicit one is set |
//! | `REDCR_EXEC=threads` | thread-per-task fallback backend |
//! | `REDCR_STACK_KB` | coroutine stack size (default 128; detlint R9 bounds root chains well under that) |
//!
//! Unset, the pool sizes itself to `available_parallelism()`.
//!
//! ## Determinism
//!
//! The scheduler introduces no entropy of its own (fixed steal rotation,
//! FIFO deques, no clocks, no RNG — the crate is a detlint `hot` domain).
//! Simulation results stay bit-identical across worker counts because the
//! layers above order all observable effects by virtual time; the
//! workspace gate tests assert that at 1, 2, and 8 workers.

mod ctx;
mod pool;
mod stack;

pub use pool::{
    current_waker, park_current, run_batch, yield_now, Backend, BatchResult, BatchStats,
    PoolConfig, Waker,
};
