//! Bare-metal stackful context switch.
//!
//! One exported primitive, [`redcr_ctx_switch`]: save the callee-saved
//! register frame of the current continuation on its own stack, publish
//! the resulting stack pointer through `save`, then install `to` as the
//! stack pointer and return into whatever continuation was frozen there.
//! Both directions of every worker↔task transfer go through this single
//! function, so a frozen continuation is always "parked inside
//! `redcr_ctx_switch`" and resuming it is symmetric with freezing it.
//!
//! A *fresh* task's stack is hand-crafted by [`forge_stack`] to look
//! exactly like a frozen `redcr_ctx_switch` frame whose saved return
//! address is the `redcr_task_start` trampoline. The trampoline moves the
//! task pointer (smuggled through a callee-saved register) into the first
//! argument register and calls [`crate::pool::redcr_task_entry`], which
//! never returns — a finished task switches back to its worker with a
//! `Done` yield kind instead.
//!
//! Only the callee-saved portion of the ABI is preserved: x86-64 SysV
//! (`rbx`, `rbp`, `r12`–`r15`) and AArch64 AAPCS (`x19`–`x28`, the frame
//! pointer/link register pair, and `d8`–`d15`). Everything caller-saved is
//! dead at a `redcr_ctx_switch` call site by definition of the C ABI, so
//! the switch is a plain function call from the compiler's point of view.
//! The frame pointer of a fresh task is forged as zero so frame-pointer
//! stack walkers terminate instead of wandering off the coroutine stack.

/// Size in bytes of the register frame a frozen continuation occupies on
/// its stack: 6 callee-saved GPRs + the return address on x86-64.
#[cfg(target_arch = "x86_64")]
pub(crate) const FRAME_BYTES: usize = 56;

/// 10 callee-saved GPRs + fp/lr + 8 callee-saved FP doubles on AArch64.
#[cfg(target_arch = "aarch64")]
pub(crate) const FRAME_BYTES: usize = 160;

#[cfg(target_arch = "x86_64")]
core::arch::global_asm!(
    ".text",
    ".balign 16",
    ".globl redcr_ctx_switch",
    "redcr_ctx_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov [rdi], rsp",
    "mov rsp, rsi",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    ".balign 16",
    ".globl redcr_task_start",
    "redcr_task_start:",
    // rsp is 16-aligned here (frame fully popped), so the `call` below
    // leaves the callee with the SysV-mandated rsp % 16 == 8 at entry.
    "mov rdi, r12",
    "xor ebp, ebp",
    "call {entry}",
    // `redcr_task_entry` never returns; trap hard if it ever does.
    "ud2",
    entry = sym crate::pool::redcr_task_entry,
);

#[cfg(target_arch = "aarch64")]
core::arch::global_asm!(
    ".text",
    ".balign 16",
    ".globl redcr_ctx_switch",
    "redcr_ctx_switch:",
    "sub sp, sp, #160",
    "stp x19, x20, [sp, #0]",
    "stp x21, x22, [sp, #16]",
    "stp x23, x24, [sp, #32]",
    "stp x25, x26, [sp, #48]",
    "stp x27, x28, [sp, #64]",
    "stp x29, x30, [sp, #80]",
    "stp d8, d9, [sp, #96]",
    "stp d10, d11, [sp, #112]",
    "stp d12, d13, [sp, #128]",
    "stp d14, d15, [sp, #144]",
    "mov x9, sp",
    "str x9, [x0]",
    "mov sp, x1",
    "ldp x19, x20, [sp, #0]",
    "ldp x21, x22, [sp, #16]",
    "ldp x23, x24, [sp, #32]",
    "ldp x25, x26, [sp, #48]",
    "ldp x27, x28, [sp, #64]",
    "ldp x29, x30, [sp, #80]",
    "ldp d8, d9, [sp, #96]",
    "ldp d10, d11, [sp, #112]",
    "ldp d12, d13, [sp, #128]",
    "ldp d14, d15, [sp, #144]",
    "add sp, sp, #160",
    "ret",
    ".balign 16",
    ".globl redcr_task_start",
    "redcr_task_start:",
    "mov x0, x19",
    "mov x29, xzr",
    "bl {entry}",
    "brk #0x1",
    entry = sym crate::pool::redcr_task_entry,
);

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
extern "C" {
    /// Freeze the current continuation (writing its stack pointer through
    /// `save`) and resume the continuation frozen at stack pointer `to`.
    ///
    /// # Safety
    /// `save` must point to writable memory that outlives the freeze;
    /// `to` must be a stack pointer previously produced by this function
    /// or by [`forge_stack`], resumed at most once per freeze.
    pub(crate) fn redcr_ctx_switch(save: *mut usize, to: usize);

    /// Trampoline a forged frame "returns" into; never called from Rust.
    fn redcr_task_start();
}

/// Writes a fake frozen-continuation frame onto a fresh stack so that
/// resuming it lands in `redcr_task_start` with `task` in the smuggling
/// register, and returns the forged stack pointer.
///
/// # Safety
/// `top` must be the one-past-the-end address of a stack at least
/// `FRAME_BYTES + 16` bytes deep, writable and unaliased.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
pub(crate) unsafe fn forge_stack(top: *mut u8, task: usize) -> usize {
    let top16 = (top as usize) & !15;
    let sp = top16 - FRAME_BYTES;
    let slot = |off: usize| (sp + off) as *mut usize;
    for i in 0..(FRAME_BYTES / 8) {
        slot(i * 8).write(0);
    }
    #[cfg(target_arch = "x86_64")]
    {
        slot(24).write(task); // r12: smuggled task pointer
        slot(48).write(redcr_task_start as *const () as usize); // return address
    }
    #[cfg(target_arch = "aarch64")]
    {
        slot(0).write(task); // x19: smuggled task pointer
        slot(88).write(redcr_task_start as *const () as usize); // x30: link register
    }
    sp
}
