//! # redcr — Combining Partial Redundancy and Checkpointing for HPC
//!
//! A Rust reproduction of Elliott, Kharbas, Fiala, Mueller, Ferreira and
//! Engelmann, *Combining Partial Redundancy and Checkpointing for HPC*
//! (ICDCS 2012): the analytic model, a RedMPI-style replication layer over a
//! deterministic message-passing runtime, coordinated checkpoint/restart,
//! Poisson failure injection, NPB-style application kernels, and a
//! discrete-event cluster simulator — everything needed to regenerate every
//! table and figure of the paper's evaluation.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`model`] — Eqs. 1–15 and the optimal-configuration search.
//! * [`mpi`] — the in-process message-passing runtime (virtual time).
//! * [`red`] — transparent process replication (RedMPI-style).
//! * [`ckpt`] — coordinated checkpoint/restart protocols and storage.
//! * [`fault`] — Poisson failure injection.
//! * [`apps`] — CG / Jacobi / EP kernels.
//! * [`cluster`] — discrete-event job simulator at exascale node counts.
//! * [`core`] — the combined planner + resilient executor.
//! * [`trace`] — virtual-time flight recorder, JSONL/Perfetto export and
//!   analyzer.
//! * [`metrics`] — virtual-time metrics registry (counters, gauges, log2
//!   histograms) with a configurable-cadence scraper.
//! * [`sweep`] — the scenario-sweep capacity planner: dedup, multi-core
//!   batch execution, persistent result cache, Pareto frontiers.
//!
//! # Quickstart
//!
//! ```
//! use redcr::model::combined::CombinedConfig;
//! use redcr::model::optimizer::{optimal_redundancy, RGrid};
//! use redcr::model::units;
//!
//! # fn main() -> Result<(), redcr::model::ModelError> {
//! let cfg = CombinedConfig::builder()
//!     .virtual_processes(100_000)
//!     .base_time_hours(128.0)
//!     .node_mtbf_hours(units::hours_from_years(5.0))
//!     .comm_fraction(0.2)
//!     .checkpoint_cost_hours(units::hours_from_mins(10.0))
//!     .restart_cost_hours(units::hours_from_mins(30.0))
//!     .build()?;
//! let best = optimal_redundancy(&cfg, &RGrid::half_steps())?;
//! println!("best degree: {}x, T = {:.1} h", best.degree, best.outcome.total_time);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use redcr_apps as apps;
pub use redcr_ckpt as ckpt;
pub use redcr_cluster as cluster;
pub use redcr_core as core;
pub use redcr_fault as fault;
pub use redcr_metrics as metrics;
pub use redcr_model as model;
pub use redcr_mpi as mpi;
pub use redcr_prof as prof;
pub use redcr_red as red;
pub use redcr_sweep as sweep;
pub use redcr_trace as trace;
