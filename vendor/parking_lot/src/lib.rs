//! Vendored, dependency-free stand-in for the subset of `parking_lot` this
//! workspace uses: a non-poisoning `Mutex`/`Condvar`/`RwLock` built on top
//! of `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this shim. Semantics match parking_lot where it
//! matters here: `lock()` never returns a poison error (a poisoned std
//! lock is recovered transparently), and `Condvar::wait` takes a
//! `&mut MutexGuard`.

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock that does not poison.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(poisoned)) => {
                Some(MutexGuard { inner: poisoned.into_inner() })
            }
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guarded mutex while waiting.
    ///
    /// Spurious wakeups are possible, as with any condvar.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(&mut guard.inner, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        });
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Applies `f` to the owned std guard behind `slot` in place.
///
/// `std::sync::Condvar::wait` consumes the guard by value while our public
/// API (mirroring parking_lot) only has `&mut` access; the temporary
/// placeholder guard bridges the two. The placeholder locks a dedicated
/// static mutex, which is uncontended by construction.
fn replace_guard<T: ?Sized>(
    slot: &mut sync::MutexGuard<'_, T>,
    f: impl FnOnce(sync::MutexGuard<'_, T>) -> sync::MutexGuard<'_, T>,
) {
    // SAFETY: we read the guard out, pass it through `f` (which returns a
    // guard for the same mutex), and write the result back before anyone
    // can observe the hole. `f` cannot panic observably mid-swap for our
    // closures (poison recovery is branch-only), but to stay sound on
    // unwind we abort if `f` panics.
    struct AbortOnPanic;
    impl Drop for AbortOnPanic {
        fn drop(&mut self) {
            if std::thread::panicking() {
                std::process::abort();
            }
        }
    }
    let bomb = AbortOnPanic;
    unsafe {
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
    }
    std::mem::forget(bomb);
}

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { inner }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cond) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cond.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cond) = &*pair;
        *lock.lock() = true;
        cond.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
