//! Vendored, dependency-free stand-in for the subset of `rand` 0.8 this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen` and
//! `Rng::gen_range` over integer and float ranges.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this shim. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic for a given seed, which is all the
//! simulators need. Streams do NOT match upstream `rand`; all seeds in
//! this repository are interpreted relative to this generator.

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a standard-distributed type: `f64`/`f32` uniform
    /// in `[0, 1)`, integers uniform over their full range, `bool` fair.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Fair coin flip.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 top bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange {
    /// Element type of the range.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;

            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo with a 64-bit draw: bias is negligible for the
                // span sizes the simulators use.
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

macro_rules! signed_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;

            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $ty
            }
        }
    )*};
}

signed_int_range!(isize, i64, i32, i16, i8);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn coverage_of_small_range() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
