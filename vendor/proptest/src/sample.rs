//! Sampling helpers (`prop::sample::Index`).

use crate::{Arbitrary, TestRng};

/// An index into a collection of as-yet-unknown size: stores raw entropy
/// and projects it onto `0..len` on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Projects onto `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.raw % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index { raw: rng.next_u64() }
    }
}
