//! Vendored, dependency-free stand-in for the subset of `proptest` this
//! workspace uses: the `proptest!` macro over range / `any` / collection /
//! tuple strategies, plus `prop_assert!`-family macros and
//! `ProptestConfig::with_cases`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this shim. Unlike upstream proptest it does NOT
//! shrink failing inputs — it reports the failing case's arguments
//! instead — and cases are generated from a per-test deterministic seed.

use std::fmt;
use std::ops::Range;

pub mod collection;
pub mod sample;

/// Aliases mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Mirrors the `prop::` namespace (`prop::collection::vec`, `prop::sample::Index`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Maximum rejected (via `prop_assume!`) samples before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier simulation
        // properties fast while still exploring the space.
        ProptestConfig { cases: 64, max_global_rejects: 4096 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this sample out.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A filtered-out sample.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Deterministic generator backing the harness (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name so each property gets a stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($idx:tt $name:ident)+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 T0),
    (0 T0 1 T1),
    (0 T0 1 T1 2 T2),
    (0 T0 1 T1 2 T2 3 T3),
    (0 T0 1 T1 2 T2 3 T3 4 T4),
    (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5),
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `A` (`any::<u8>()` etc.).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any { _marker: std::marker::PhantomData }
}

#[doc(hidden)]
pub mod __runner {
    use super::{ProptestConfig, TestCaseError, TestRng};

    /// Drives one property: samples inputs, runs the body, panics on
    /// failure with the case's rendered arguments.
    pub fn run_property<S, V>(
        name: &str,
        config: &ProptestConfig,
        strategy: &S,
        mut body: impl FnMut(V) -> Result<(), TestCaseError>,
    ) where
        S: super::Strategy<Value = V>,
        V: std::fmt::Debug + Clone,
    {
        let mut rng = TestRng::from_name(name);
        let mut rejects = 0u32;
        let mut passed = 0u32;
        while passed < config.cases {
            let value = strategy.sample(&mut rng);
            let rendered = format!("{value:?}");
            match body(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "property `{name}`: too many prop_assume! rejections \
                             ({rejects}) before reaching {} cases",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property `{name}` failed after {passed} passing case(s): \
                         {msg}\n  inputs: {rendered}"
                    );
                }
            }
        }
    }
}

/// Defines property-based tests.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items whose
/// arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $test_name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $test_name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::__runner::run_property(
                    stringify!($test_name),
                    &__config,
                    &($($strategy,)+),
                    |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $test_name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $test_name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                concat!("assertion failed: ", stringify!($cond), ": {}"),
                format!($($fmt)+),
            )));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), __l, __r,
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

/// Rejects the current sample unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn assume_filters(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0, "n = {}", n);
        }

        #[test]
        fn index_in_range(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u8..255) {
            prop_assert!(x < 255);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failure_panics_with_inputs() {
        proptest! {
            #[allow(unreachable_code)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
