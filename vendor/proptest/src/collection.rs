//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy producing `Vec`s with lengths drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `vec(element, sizes)`: vectors whose length is uniform in `sizes` and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
