//! Vendored, dependency-free reimplementation of the subset of the `bytes`
//! crate this workspace uses: a cheaply cloneable, immutable, contiguous
//! byte buffer with O(1) slicing.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this stand-in. Only the API surface actually consumed
//! by the redcr crates is provided.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, Range, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
///
/// Clones share the underlying allocation; `slice` produces views without
/// copying. Static slices are stored without any allocation at all.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
    offset: usize,
    len: usize,
}

/// Payloads up to this long are stored inline in the `Bytes` value itself —
/// no heap allocation, and clones are plain copies. Sized so the scalar
/// payloads dominating collective traffic (one to three little-endian
/// `f64`/`u64` words) always take the inline path.
pub const INLINE_CAP: usize = 24;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Inline { buf: [u8; INLINE_CAP], init: u8 },
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes { data: Repr::Static(&[]), offset: 0, len: 0 }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Repr::Static(bytes), offset: 0, len: bytes.len() }
    }

    /// Copies a slice into a new buffer — inline (allocation-free) when it
    /// fits, shared otherwise.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        if data.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..data.len()].copy_from_slice(data);
            Bytes { data: Repr::Inline { buf, init: data.len() as u8 }, offset: 0, len: data.len() }
        } else {
            let len = data.len();
            Bytes { data: Repr::Shared(Arc::new(data.to_vec())), offset: 0, len }
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// An O(1) sub-view of this buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let Range { start, end } = resolve_range(range, self.len);
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes { data: self.data.clone(), offset: self.offset + start, len: end - start }
    }

    fn as_slice(&self) -> &[u8] {
        let full: &[u8] = match &self.data {
            Repr::Static(s) => s,
            Repr::Inline { buf, init } => &buf[..usize::from(*init)],
            Repr::Shared(v) => v.as_slice(),
        };
        &full[self.offset..self.offset + self.len]
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

fn resolve_range(range: impl RangeBounds<usize>, len: usize) -> Range<usize> {
    use std::ops::Bound;
    let start = match range.start_bound() {
        Bound::Included(&n) => n,
        Bound::Excluded(&n) => n + 1,
        Bound::Unbounded => 0,
    };
    let end = match range.end_bound() {
        Bound::Included(&n) => n + 1,
        Bound::Excluded(&n) => n,
        Bound::Unbounded => len,
    };
    start..end
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        if v.len() <= INLINE_CAP {
            return Bytes::copy_from_slice(&v);
        }
        let len = v.len();
        Bytes { data: Repr::Shared(Arc::new(v)), offset: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_and_slice_views() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b, c);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
    }

    #[test]
    fn static_and_empty() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(&b[..], b"abc");
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"xy").to_vec(), b"xy".to_vec());
    }

    #[test]
    fn inline_round_trips_and_slices() {
        let small: Vec<u8> = (0..INLINE_CAP as u8).collect();
        let b = Bytes::from(small.clone());
        assert_eq!(b.to_vec(), small, "inline storage preserves contents");
        assert_eq!(b.slice(3..7).to_vec(), small[3..7].to_vec());
        let big: Vec<u8> = (0..=255u8).collect();
        let c = Bytes::from(big.clone());
        assert_eq!(c.to_vec(), big, "oversize payloads still round-trip");
        assert_eq!(Bytes::copy_from_slice(&small), b, "inline and copied compare equal");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_slice_panics() {
        let b = Bytes::from_static(b"abc");
        let _ = b.slice(2..9);
    }
}
