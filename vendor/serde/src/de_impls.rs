//! `Deserialize` impls for the std types the workspace checkpoints.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

use crate::de::{Deserialize, Deserializer, Error, MapAccess, SeqAccess, Visitor};

macro_rules! primitive_deserialize {
    ($($ty:ty => ($method:ident, $visit:ident, $expecting:literal),)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;

                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expecting)
                    }

                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$method(V)
            }
        }
    )*};
}

primitive_deserialize! {
    bool => (deserialize_bool, visit_bool, "a bool"),
    i8 => (deserialize_i8, visit_i8, "an i8"),
    i16 => (deserialize_i16, visit_i16, "an i16"),
    i32 => (deserialize_i32, visit_i32, "an i32"),
    i64 => (deserialize_i64, visit_i64, "an i64"),
    u8 => (deserialize_u8, visit_u8, "a u8"),
    u16 => (deserialize_u16, visit_u16, "a u16"),
    u32 => (deserialize_u32, visit_u32, "a u32"),
    u64 => (deserialize_u64, visit_u64, "a u64"),
    f32 => (deserialize_f32, visit_f32, "an f32"),
    f64 => (deserialize_f64, visit_f64, "an f64"),
    char => (deserialize_char, visit_char, "a char"),
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = usize;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a usize")
            }

            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom(format!("{v} overflows usize")))
            }
        }
        deserializer.deserialize_u64(V)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = isize;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an isize")
            }

            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom(format!("{v} overflows isize")))
            }
        }
        deserializer.deserialize_i64(V)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }

            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }

            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }

            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }

            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T> Deserialize<'de> for PhantomData<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T> Visitor<'de> for V<T> {
            type Value = PhantomData<T>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }

            fn visit_unit<E: Error>(self) -> Result<PhantomData<T>, E> {
                Ok(PhantomData)
            }
        }
        deserializer.deserialize_unit_struct("PhantomData", V(PhantomData))
    }
}

macro_rules! seq_deserialize {
    ($($container:ident [$($bound:tt)*],)*) => {$(
        impl<'de, T: Deserialize<'de> $($bound)*> Deserialize<'de> for $container<T> {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V<T>(PhantomData<T>);
                impl<'de, T: Deserialize<'de> $($bound)*> Visitor<'de> for V<T> {
                    type Value = $container<T>;

                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a sequence")
                    }

                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut out = $container::<T>::new();
                        while let Some(item) = seq.next_element::<T>()? {
                            out.extend(std::iter::once(item));
                        }
                        Ok(out)
                    }
                }
                deserializer.deserialize_seq(V::<T>(PhantomData))
            }
        }
    )*};
}

seq_deserialize! {
    Vec [],
    VecDeque [],
    BTreeSet [+ Ord],
}

impl<'de, T, H> Deserialize<'de> for HashSet<T, H>
where
    T: Deserialize<'de> + Eq + Hash,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, H>(PhantomData<(T, H)>);
        impl<'de, T, H> Visitor<'de> for V<T, H>
        where
            T: Deserialize<'de> + Eq + Hash,
            H: BuildHasher + Default,
        {
            type Value = HashSet<T, H>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a set")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = HashSet::with_hasher(H::default());
                while let Some(item) = seq.next_element::<T>()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V::<T, H>(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MV<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MV<K, V> {
            type Value = BTreeMap<K, V>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((k, v)) = map.next_entry::<K, V>()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MV::<K, V>(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MV<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MV<K, V, H>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
            H: BuildHasher + Default,
        {
            type Value = HashMap<K, V, H>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::with_hasher(H::default());
                while let Some((k, v)) = map.next_entry::<K, V>()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MV::<K, V, H>(PhantomData))
    }
}

macro_rules! tuple_deserialize {
    ($($len:expr => ($($name:ident)+),)*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for V<$($name),+> {
                    type Value = ($($name,)+);

                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of {} elements", $len)
                    }

                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        Ok(($(
                            match seq.next_element::<$name>()? {
                                Some(v) => v,
                                None => return Err(A::Error::invalid_length(
                                    $len,
                                    "a full tuple",
                                )),
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    )*};
}

tuple_deserialize! {
    1 => (T0),
    2 => (T0 T1),
    3 => (T0 T1 T2),
    4 => (T0 T1 T2 T3),
    5 => (T0 T1 T2 T3 T4),
    6 => (T0 T1 T2 T3 T4 T5),
    7 => (T0 T1 T2 T3 T4 T5 T6),
    8 => (T0 T1 T2 T3 T4 T5 T6 T7),
}
