//! Vendored, dependency-free reimplementation of the subset of the serde
//! data model this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this stand-in. It provides the `Serialize` /
//! `Deserialize` traits, the full `Serializer` / `Deserializer` visitor
//! machinery that `redcr_ckpt::codec` implements, impls for the std types
//! the checkpointed states contain, and (behind the `derive` feature)
//! `#[derive(Serialize, Deserialize)]` proc-macros.
//!
//! Wire compatibility with upstream serde is irrelevant here: the only
//! (de)serializer in the tree is the repository's own codec.

pub mod de;
pub mod ser;

mod de_impls;
mod ser_impls;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
