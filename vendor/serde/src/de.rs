//! Deserialization half of the data model.

use std::fmt::{self, Debug, Display};
use std::marker::PhantomData;

/// Error type a [`Deserializer`] reports.
pub trait Error: Sized + Debug + Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A value of the right type but wrong content.
    fn invalid_value(msg: &str) -> Self {
        Self::custom(format!("invalid value: {msg}"))
    }

    /// A sequence or map of the wrong length.
    fn invalid_length(len: usize, expected: &str) -> Self {
        Self::custom(format!("invalid length {len}, expected {expected}"))
    }

    /// A required field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }
}

/// A type buildable from the serde data model.
pub trait Deserialize<'de>: Sized {
    /// Drives `deserializer` to build a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable from any lifetime (owns all its data).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A stateful deserialization entry point (serde's seed mechanism).
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;

    /// Drives `deserializer` using the seed's state.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;

    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A source of the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error reported on failure.
    type Error: Error;

    /// Self-describing formats dispatch on the encoded type.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a borrowed or transient string.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes borrowed or transient bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a fixed-arity tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct field name or enum variant name.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skips over one value of any type.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Whether the format is human readable (binary formats return false).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Callbacks a [`Deserializer`] invokes with decoded data.
///
/// Every `visit_*` defaults to a type-mismatch error so visitors only
/// implement the shapes they accept.
pub trait Visitor<'de>: Sized {
    /// The value this visitor builds.
    type Value;

    /// Writes "what was expected" for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Visits a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("bool {v}")))
    }

    /// Visits an `i8`.
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    /// Visits an `i16`.
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    /// Visits an `i32`.
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    /// Visits an `i64`.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("integer {v}")))
    }

    /// Visits a `u8`.
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    /// Visits a `u16`.
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    /// Visits a `u32`.
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    /// Visits a `u64`.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("unsigned integer {v}")))
    }

    /// Visits an `f32`.
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }

    /// Visits an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("float {v}")))
    }

    /// Visits a `char`.
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("char {v:?}")))
    }

    /// Visits a transient string slice.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("string {v:?}")))
    }

    /// Visits a string borrowed from the input.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Visits an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits transient bytes.
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("bytes")))
    }

    /// Visits bytes borrowed from the input.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Visits an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Visits `Option::None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("none")))
    }

    /// Visits `Option::Some` (the deserializer carries the inner value).
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, format_args!("some")))
    }

    /// Visits `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("unit")))
    }

    /// Visits a newtype struct (the deserializer carries the inner value).
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(unexpected(&self, format_args!("newtype struct")))
    }

    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, format_args!("sequence")))
    }

    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, format_args!("map")))
    }

    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, format_args!("enum")))
    }
}

fn unexpected<'de, V: Visitor<'de>, E: Error>(visitor: &V, what: fmt::Arguments<'_>) -> E {
    struct Expecting<'a, V>(&'a V);
    impl<'de, V: Visitor<'de>> Display for Expecting<'_, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
    E::custom(format!("invalid type: {what}, expected {}", Expecting(visitor)))
}

/// Streaming access to sequence elements.
pub trait SeqAccess<'de> {
    /// Error reported on failure.
    type Error: Error;

    /// Deserializes the next element through a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserializes the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Streaming access to map entries.
pub trait MapAccess<'de> {
    /// Error reported on failure.
    type Error: Error;

    /// Deserializes the next key through a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserializes the next value through a seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserializes the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Deserializes the next entry.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error reported on failure.
    type Error: Error;
    /// Accessor for the variant's payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserializes the variant tag through a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserializes the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error reported on failure.
    type Error: Error;

    /// A variant with no payload.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// A newtype payload, through a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// A newtype payload.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// A tuple payload of `len` fields.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// A struct payload with the given fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a `Deserializer` (used for enum
/// variant indices).
pub trait IntoDeserializer<'de, E: Error> {
    /// The produced deserializer.
    type Deserializer: Deserializer<'de, Error = E>;

    /// Wraps `self` in a deserializer.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Deserializer yielding a single `u32`.
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<E>,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;

    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer { value: self, marker: PhantomData }
    }
}

macro_rules! u32_forward {
    ($($method:ident)*) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    )*};
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    u32_forward!(
        deserialize_any deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32
        deserialize_i64 deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
        deserialize_f32 deserialize_f64 deserialize_char deserialize_str deserialize_string
        deserialize_bytes deserialize_byte_buf deserialize_option deserialize_unit
        deserialize_seq deserialize_map deserialize_identifier deserialize_ignored_any
    );

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}
