//! Serialization half of the data model.

use std::fmt::{Debug, Display};

/// Error type a [`Serializer`] reports.
pub trait Error: Sized + Debug + Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can drive a [`Serializer`].
pub trait Serialize {
    /// Feeds `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error reported on failure.
    type Error: Error;

    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes opaque bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence of `len` elements (if known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a tuple of `len` elements.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map of `len` entries (if known).
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether the format is human readable (binary formats return false).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Sequence sub-serializer.
pub trait SerializeSeq {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;

    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple sub-serializer.
pub trait SerializeTuple {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;

    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-struct sub-serializer.
pub trait SerializeTupleStruct {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;

    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-variant sub-serializer.
pub trait SerializeTupleVariant {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;

    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map sub-serializer.
pub trait SerializeMap {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;

    /// Serializes one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serializes a key-value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct sub-serializer.
pub trait SerializeStruct {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;

    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct-variant sub-serializer.
pub trait SerializeStructVariant {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;

    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}
