//! `Serialize` impls for the std types the workspace checkpoints.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use crate::ser::{Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer};

macro_rules! primitive_serialize {
    ($($ty:ty => $method:ident,)*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

primitive_serialize! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize, H> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

macro_rules! tuple_serialize {
    ($(($($idx:tt $name:ident)+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple(count!($($name)+))?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }
    )*};
}

macro_rules! count {
    () => (0usize);
    ($head:ident $($tail:ident)*) => (1usize + count!($($tail)*));
}

tuple_serialize! {
    (0 T0),
    (0 T0 1 T1),
    (0 T0 1 T1 2 T2),
    (0 T0 1 T1 2 T2 3 T3),
    (0 T0 1 T1 2 T2 3 T3 4 T4),
    (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5),
    (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6),
    (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6 7 T7),
}
