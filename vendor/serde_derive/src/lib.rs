//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The build environment has no network access to crates.io, so this
//! crate re-implements the subset of serde_derive the workspace needs —
//! plain (non-generic) structs and enums, no `#[serde(...)]` attributes —
//! by hand-parsing the input token stream (no syn/quote available) and
//! emitting code as strings.
//!
//! Supported shapes: unit/tuple/named structs, enums whose variants are
//! unit, newtype, tuple, or struct-like. Field order is the wire order,
//! matching what `redcr_ckpt::codec` encodes.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[derive(Debug, Clone)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Unnamed(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    data: Data,
}

/// Derives `serde::Serialize` for non-generic structs and enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` for non-generic structs and enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
                return Err(format!("unexpected token `{kw}` before struct/enum"));
            }
            _ => return Err("expected `struct` or `enum`".into()),
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        _ => unreachable!(),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("derive does not support generic type `{name}`"));
        }
    }

    let data = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Unnamed(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Fields::Unit),
            _ => return Err("malformed struct body".into()),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream())?)
            }
            _ => return Err("malformed enum body".into()),
        }
    };

    Ok(Input { name, data })
}

/// Parses `name: Type, ...` bodies, returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        names.push(field);
    }
    Ok(names)
}

/// Counts comma-separated fields in a tuple-struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut has_content = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                has_content = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                has_content = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if has_content {
                    count += 1;
                    has_content = false;
                }
            }
            _ => has_content = true,
        }
    }
    if has_content {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // variant attribute, e.g. #[default] or a doc comment
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let fields = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        Fields::Unnamed(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        Fields::Named(parse_named_fields(g.stream())?)
                    }
                    _ => Fields::Unit,
                };
                // Skip an explicit discriminant (`= expr`) if present.
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '=' {
                        i += 1;
                        while i < tokens.len() {
                            if let TokenTree::Punct(p) = &tokens[i] {
                                if p.as_char() == ',' {
                                    break;
                                }
                            }
                            i += 1;
                        }
                    }
                }
                variants.push(Variant { name, fields });
            }
            other => return Err(format!("unexpected token `{other}` in enum body")),
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(Fields::Unit) => {
            format!("__serializer.serialize_unit_struct({name:?})")
        }
        Data::Struct(Fields::Named(fields)) => {
            let mut b = String::new();
            let _ = write!(
                b,
                "let mut __st = ::serde::Serializer::serialize_struct(\
                 __serializer, {name:?}, {})?;",
                fields.len()
            );
            for f in fields {
                let _ = write!(
                    b,
                    "::serde::ser::SerializeStruct::serialize_field(\
                     &mut __st, {f:?}, &self.{f})?;"
                );
            }
            b.push_str("::serde::ser::SerializeStruct::end(__st)");
            b
        }
        Data::Struct(Fields::Unnamed(n)) => {
            let mut b = String::new();
            let _ = write!(
                b,
                "let mut __st = ::serde::Serializer::serialize_tuple_struct(\
                 __serializer, {name:?}, {n})?;"
            );
            for idx in 0..*n {
                let _ = write!(
                    b,
                    "::serde::ser::SerializeTupleStruct::serialize_field(\
                     &mut __st, &self.{idx})?;"
                );
            }
            b.push_str("::serde::ser::SerializeTupleStruct::end(__st)");
            b
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for (vi, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(\
                             __serializer, {name:?}, {vi}u32, {vname:?}),"
                        );
                    }
                    Fields::Unnamed(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vname}(__f0) => \
                             ::serde::Serializer::serialize_newtype_variant(\
                             __serializer, {name:?}, {vi}u32, {vname:?}, __f0),"
                        );
                    }
                    Fields::Unnamed(n) => {
                        let pats: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let _ = write!(
                            arms,
                            "{name}::{vname}({pat}) => {{ \
                             let mut __st = ::serde::Serializer::serialize_tuple_variant(\
                             __serializer, {name:?}, {vi}u32, {vname:?}, {n})?;",
                            pat = pats.join(", ")
                        );
                        for p in &pats {
                            let _ = write!(
                                arms,
                                "::serde::ser::SerializeTupleVariant::serialize_field(\
                                 &mut __st, {p})?;"
                            );
                        }
                        arms.push_str("::serde::ser::SerializeTupleVariant::end(__st) },");
                    }
                    Fields::Named(fields) => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {pat} }} => {{ \
                             let mut __st = ::serde::Serializer::serialize_struct_variant(\
                             __serializer, {name:?}, {vi}u32, {vname:?}, {n})?;",
                            pat = fields.join(", "),
                            n = fields.len()
                        );
                        for f in fields {
                            let _ = write!(
                                arms,
                                "::serde::ser::SerializeStructVariant::serialize_field(\
                                 &mut __st, {f:?}, {f})?;"
                            );
                        }
                        arms.push_str("::serde::ser::SerializeStructVariant::end(__st) },");
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

/// `field: <next element or error>,` constructors shared by struct-like
/// shapes; `path` names the thing being built for error messages.
fn named_ctor(fields: &[String], path: &str) -> String {
    let mut b = String::new();
    for f in fields {
        let _ = write!(
            b,
            "{f}: match ::serde::de::SeqAccess::next_element(&mut __seq)? {{ \
             ::std::option::Option::Some(__v) => __v, \
             ::std::option::Option::None => return ::std::result::Result::Err(\
             ::serde::de::Error::custom(\"missing field `{f}` of {path}\")) }},"
        );
    }
    b
}

fn unnamed_ctor(n: usize, path: &str) -> String {
    let mut b = String::new();
    for idx in 0..n {
        let _ = write!(
            b,
            "match ::serde::de::SeqAccess::next_element(&mut __seq)? {{ \
             ::std::option::Option::Some(__v) => __v, \
             ::std::option::Option::None => return ::std::result::Result::Err(\
             ::serde::de::Error::custom(\"missing field {idx} of {path}\")) }},"
        );
    }
    b
}

fn quoted_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("{s:?}")).collect();
    format!("&[{}]", quoted.join(", "))
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(Fields::Unit) => format!(
            "struct __V;\n\
             impl<'de> ::serde::de::Visitor<'de> for __V {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::std::fmt::Formatter)\n\
                     -> ::std::fmt::Result {{ __f.write_str(\"unit struct {name}\") }}\n\
                 fn visit_unit<__E: ::serde::de::Error>(self)\n\
                     -> ::std::result::Result<{name}, __E> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}\n\
             ::serde::Deserializer::deserialize_unit_struct(__deserializer, {name:?}, __V)"
        ),
        Data::Struct(Fields::Named(fields)) => {
            let ctor = named_ctor(fields, &format!("struct {name}"));
            format!(
                "struct __V;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __V {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::std::fmt::Formatter)\n\
                         -> ::std::fmt::Result {{ __f.write_str(\"struct {name}\") }}\n\
                     fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                         -> ::std::result::Result<{name}, __A::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {ctor} }})\n\
                     }}\n\
                 }}\n\
                 ::serde::Deserializer::deserialize_struct(\
                 __deserializer, {name:?}, {fields}, __V)",
                fields = quoted_list(fields)
            )
        }
        Data::Struct(Fields::Unnamed(n)) => {
            let ctor = unnamed_ctor(*n, &format!("struct {name}"));
            format!(
                "struct __V;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __V {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::std::fmt::Formatter)\n\
                         -> ::std::fmt::Result {{ __f.write_str(\"tuple struct {name}\") }}\n\
                     fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                         -> ::std::result::Result<{name}, __A::Error> {{\n\
                         ::std::result::Result::Ok({name}({ctor}))\n\
                     }}\n\
                 }}\n\
                 ::serde::Deserializer::deserialize_tuple_struct(\
                 __deserializer, {name:?}, {n}, __V)"
            )
        }
        Data::Enum(variants) => {
            let variant_names: Vec<String> = variants.iter().map(|v| v.name.clone()).collect();
            let mut arms = String::new();
            for (vi, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{vi}u32 => {{ \
                             ::serde::de::VariantAccess::unit_variant(__variant)?; \
                             ::std::result::Result::Ok({name}::{vname}) }},"
                        );
                    }
                    Fields::Unnamed(1) => {
                        let _ = write!(
                            arms,
                            "{vi}u32 => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::de::VariantAccess::newtype_variant(__variant)?)),"
                        );
                    }
                    Fields::Unnamed(n) => {
                        let ctor = unnamed_ctor(*n, &format!("variant {name}::{vname}"));
                        let _ = write!(
                            arms,
                            "{vi}u32 => {{\n\
                             struct __TV{vi};\n\
                             impl<'de> ::serde::de::Visitor<'de> for __TV{vi} {{\n\
                                 type Value = {name};\n\
                                 fn expecting(&self, __f: &mut ::std::fmt::Formatter)\n\
                                     -> ::std::fmt::Result {{\n\
                                     __f.write_str(\"variant {name}::{vname}\")\n\
                                 }}\n\
                                 fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(\
                                     self, mut __seq: __A)\n\
                                     -> ::std::result::Result<{name}, __A::Error> {{\n\
                                     ::std::result::Result::Ok({name}::{vname}({ctor}))\n\
                                 }}\n\
                             }}\n\
                             ::serde::de::VariantAccess::tuple_variant(\
                             __variant, {n}, __TV{vi})\n\
                             }},"
                        );
                    }
                    Fields::Named(fields) => {
                        let ctor = named_ctor(fields, &format!("variant {name}::{vname}"));
                        let _ = write!(
                            arms,
                            "{vi}u32 => {{\n\
                             struct __SV{vi};\n\
                             impl<'de> ::serde::de::Visitor<'de> for __SV{vi} {{\n\
                                 type Value = {name};\n\
                                 fn expecting(&self, __f: &mut ::std::fmt::Formatter)\n\
                                     -> ::std::fmt::Result {{\n\
                                     __f.write_str(\"variant {name}::{vname}\")\n\
                                 }}\n\
                                 fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(\
                                     self, mut __seq: __A)\n\
                                     -> ::std::result::Result<{name}, __A::Error> {{\n\
                                     ::std::result::Result::Ok(\
                                     {name}::{vname} {{ {ctor} }})\n\
                                 }}\n\
                             }}\n\
                             ::serde::de::VariantAccess::struct_variant(\
                             __variant, {fields}, __SV{vi})\n\
                             }},",
                            fields = quoted_list(fields)
                        );
                    }
                }
            }
            format!(
                "struct __V;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __V {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::std::fmt::Formatter)\n\
                         -> ::std::fmt::Result {{ __f.write_str(\"enum {name}\") }}\n\
                     fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A)\n\
                         -> ::std::result::Result<{name}, __A::Error> {{\n\
                         let (__idx, __variant): (u32, _) =\n\
                             ::serde::de::EnumAccess::variant(__data)?;\n\
                         match __idx {{\n\
                             {arms}\n\
                             __other => ::std::result::Result::Err(\
                             ::serde::de::Error::custom(::std::format!(\
                             \"invalid variant index {{}} for enum {name}\", __other))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 ::serde::Deserializer::deserialize_enum(\
                 __deserializer, {name:?}, {variants}, __V)",
                variants = quoted_list(&variant_names)
            )
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::std::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
