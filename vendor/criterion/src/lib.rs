//! Vendored, dependency-free stand-in for the subset of `criterion` this
//! workspace's benches use: `Criterion`, benchmark groups, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this shim. It measures wall-clock medians over a small
//! fixed iteration budget and prints one line per benchmark — enough to
//! compare runs by hand, with the same bench-source API as upstream.

// A wall-clock bench harness is the other sanctioned wall-clock domain
// besides crates/bench (see clippy.toml): measuring the host is its job.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A composite benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// An id made of a parameter rendering only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Types accepted as benchmark ids (`BenchmarkId`, `&str`, `String`).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the iteration budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` product per iteration
    /// (setup time excluded).
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_bench(self.iters, &id.to_string(), None, f);
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count (accepted for API compatibility; the
    /// fixed iteration budget is unchanged).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_bench(self.criterion.iters, &full, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_bench(self.criterion.iters, &full, self.throughput, |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_bench(
    iters: u64,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = if iters > 0 { bencher.elapsed / iters as u32 } else { Duration::ZERO };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if per_iter > Duration::ZERO => {
            format!(" ({:.1} MiB/s)", b as f64 / per_iter.as_secs_f64() / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!(" ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench: {name:<60} {per_iter:>12?}/iter{rate}");
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
